"""Int8 quantized serving: codecs, engine accuracy, artifact round-trip.

Three layers of guarantees:

- the per-channel codec round-trips within its theoretical step size and
  the honest int8 GEMV matches the dequantized float product;
- a :class:`~repro.serve.QuantizedEngine` (both GEMM modes) agrees with
  the exact engine's top-10 on at least 80% of items per request (in
  practice overlap is ~99%; the floor leaves room for tie shuffles);
- a quantized artifact survives the full production path: transparent
  ``load_artifact`` decode, ``engine_for_artifact`` dispatch, and a
  canary-validated :meth:`~repro.serve.ServingCluster.swap` onto a live
  cluster.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ISRecConfig
from repro.core.isrec import ISRec
from repro.serve import (
    ClusterConfig,
    QuantizedEngine,
    RecommendationEngine,
    ServingCluster,
    dequantize,
    engine_for_artifact,
    export_artifact,
    int8_gemv,
    load_artifact,
    quantize_per_channel,
    read_quantization,
)
from repro.utils import set_seed

#: Minimum per-request fraction of the exact top-10 a quantized engine
#: must reproduce (documented in docs/performance.md).
MIN_TOPK_OVERLAP = 0.8


@pytest.fixture(scope="module")
def quantized_artifact(tiny_dataset, tmp_path_factory):
    """The conftest model frozen with ``quantize="int8"``."""
    set_seed(99)
    model = ISRec.from_dataset(tiny_dataset, max_len=12,
                               config=ISRecConfig(dim=16))
    return export_artifact(
        model, tmp_path_factory.mktemp("quantized") / "isrec_q8.npz",
        quantize="int8")


class TestCodec:
    def test_round_trip_within_step(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(50, 16)).astype(np.float32)
        q, scales = quantize_per_channel(weights)
        assert q.dtype == np.int8
        assert scales.shape == (50,)
        decoded = dequantize(q, scales)
        # Symmetric rounding error is bounded by half a quantization step
        # (plus float32 round-off in the encode/decode arithmetic).
        error = np.abs(decoded - weights)
        bound = scales[:, None] * 0.5 * (1 + 1e-4) + 1e-7
        assert np.all(error < bound), float((error / bound).max())

    def test_zero_channel_exact(self):
        weights = np.zeros((3, 4), dtype=np.float32)
        weights[1] = 1.0
        q, scales = quantize_per_channel(weights)
        assert np.all(dequantize(q, scales)[0] == 0.0)
        assert np.all(dequantize(q, scales)[2] == 0.0)

    def test_outlier_row_does_not_crush_others(self):
        weights = np.ones((2, 8), dtype=np.float32) * 0.01
        weights[1] *= 1000.0  # per-tensor scaling would zero row 0
        q, scales = quantize_per_channel(weights)
        decoded = dequantize(q, scales)
        np.testing.assert_allclose(decoded[0], weights[0], rtol=0.01)

    def test_scalar_rejected(self):
        with pytest.raises(ValueError, match="scalar"):
            quantize_per_channel(np.float32(3.0))

    def test_int8_gemv_matches_float_product(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(40, 16)).astype(np.float32)
        x = rng.normal(size=16).astype(np.float32)
        q, scales = quantize_per_channel(weights)
        exact = dequantize(q, scales) @ x
        got = int8_gemv(q, scales, x)
        # One extra per-tensor activation quantization of error.
        scale = float(np.abs(exact).max())
        np.testing.assert_allclose(got, exact, atol=0.02 * scale)

    def test_int8_gemv_zero_vector(self):
        q, scales = quantize_per_channel(np.ones((4, 3), dtype=np.float32))
        assert np.all(int8_gemv(q, scales, np.zeros(3, dtype=np.float32)) == 0)


class TestQuantizedEngine:
    @pytest.mark.parametrize("gemm", ["dequant", "int8"])
    def test_topk_overlap_vs_exact(self, frozen_model, quantized_artifact,
                                   tiny_split, gemm):
        exact = RecommendationEngine(frozen_model, cache_size=64)
        quant = engine_for_artifact(quantized_artifact, cache_size=64, gemm=gemm)
        assert isinstance(quant, QuantizedEngine)
        overlaps = []
        for user in range(tiny_split.num_users):
            history = np.asarray(tiny_split.test_input(user))
            exact.set_history(user, history)
            quant.set_history(user, history)
            top_exact = {item for item, _score in exact.recommend(user, k=10)}
            top_quant = {item for item, _score in quant.recommend(user, k=10)}
            assert len(top_quant) == len(top_exact)
            overlaps.append(len(top_exact & top_quant) / max(len(top_exact), 1))
        assert min(overlaps) >= MIN_TOPK_OVERLAP, overlaps

    def test_scores_descending_and_finite(self, quantized_artifact):
        engine = engine_for_artifact(quantized_artifact)
        engine.set_history(0, [1, 2, 3])
        results = engine.recommend(0, k=10)
        scores = [score for _item, score in results]
        assert scores == sorted(scores, reverse=True)
        assert all(np.isfinite(score) for score in scores)
        assert all(item != 0 for item, _score in results)

    def test_filter_seen(self, quantized_artifact):
        engine = engine_for_artifact(quantized_artifact)
        engine.set_history(5, [1, 2, 3])
        items = {item for item, _score in engine.recommend(5, k=10)}
        assert not items & {1, 2, 3}

    def test_state_cache_is_half_precision(self, quantized_artifact):
        engine = engine_for_artifact(quantized_artifact)
        engine.set_history(7, [4, 5])
        engine.recommend(7, k=5)
        assert engine._states[7].dtype == np.float16

    def test_quantization_info(self, quantized_artifact):
        engine = engine_for_artifact(quantized_artifact)
        info = engine.quantization_info()
        assert info["scheme"] == "int8"
        assert info["compression"] > 3.0

    def test_bad_gemm_mode_rejected(self, frozen_model):
        q, scales = quantize_per_channel(
            frozen_model.item_embedding.weight.data)
        with pytest.raises(ValueError, match="gemm"):
            QuantizedEngine(frozen_model, q, scales, gemm="fp4")

    def test_float_table_rejected(self, frozen_model):
        weights = frozen_model.item_embedding.weight.data
        with pytest.raises(TypeError, match="int8"):
            QuantizedEngine(frozen_model, weights, np.ones(len(weights)))


class TestArtifactRoundTrip:
    def test_quantized_artifact_smaller(self, artifact_path, quantized_artifact):
        # ISRec artifacts carry unquantized constants (concept matrix,
        # adjacency), so the whole-file win is smaller than the 4x table win.
        assert quantized_artifact.stat().st_size < artifact_path.stat().st_size * 0.75

    def test_load_artifact_transparent_decode(self, frozen_model,
                                              quantized_artifact):
        decoded = load_artifact(quantized_artifact)
        exact = frozen_model.item_embedding.weight.data
        got = decoded.item_embedding.weight.data
        assert got.dtype == np.float32
        scale = float(np.abs(exact).max())
        np.testing.assert_allclose(got, exact, atol=scale / 127.0)

    def test_read_quantization_payloads(self, quantized_artifact, artifact_path):
        payloads = read_quantization(quantized_artifact)
        assert any(name.endswith("item_embedding.weight") for name in payloads)
        q, scales = next(iter(payloads.values()))
        assert q.dtype == np.int8
        assert scales.dtype == np.float32
        assert read_quantization(artifact_path) == {}

    def test_unknown_scheme_rejected(self, frozen_model, tmp_path):
        with pytest.raises(ValueError, match="unknown quantization scheme"):
            export_artifact(frozen_model, tmp_path / "bad.npz", quantize="int4")

    def test_plain_artifact_gets_plain_engine(self, artifact_path):
        engine = engine_for_artifact(artifact_path)
        assert type(engine) is RecommendationEngine


class TestClusterSwap:
    def test_swap_to_quantized_artifact(self, artifact_path, quantized_artifact,
                                        tiny_split):
        config = ClusterConfig(world=2, default_deadline_s=15.0)
        with ServingCluster(artifact_path, config) as cluster:
            for user in range(tiny_split.num_users):
                cluster.set_history(user,
                                    np.asarray(tiny_split.test_input(user)))
            before = cluster.recommend(1, k=10)
            report = cluster.swap(quantized_artifact)
            assert report["workers"] == 2
            after = cluster.recommend(1, k=10)
            assert not after.degraded
            top_before = {item for item, _score in before.items}
            top_after = {item for item, _score in after.items}
            overlap = len(top_before & top_after) / max(len(top_before), 1)
            assert overlap >= MIN_TOPK_OVERLAP

    def test_boot_directly_from_quantized_artifact(self, quantized_artifact):
        config = ClusterConfig(world=1, default_deadline_s=15.0)
        with ServingCluster(quantized_artifact, config) as cluster:
            cluster.set_history(3, [1, 2, 3])
            response = cluster.recommend(3, k=5)
            assert len(response.items) == 5
            assert not response.degraded
