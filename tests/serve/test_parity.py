"""Train/serve parity: the serving stack must reproduce the offline
evaluation bit for bit and never touch the autograd tape.

The engine implements the evaluator's ``score`` protocol with the exact
arithmetic of ``SequenceRecommender.score`` (same expression, same batch
shapes), so ``RankingEvaluator.evaluate(engine)`` and raw score arrays
must be *bitwise* equal to the training-side model — including seen-item
suppression semantics and left-padded short histories.  Every request
must also allocate zero autograd graph nodes
(:func:`repro.tensor.graph_nodes`).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.config import ISRecConfig
from repro.core.isrec import ISRec
from repro.data.batching import evaluation_inputs, pad_left
from repro.models.base import validation_evaluator
from repro.serve import RecommendationEngine, export_artifact, load_artifact
from repro.tensor.tensor import graph_nodes, no_grad
from repro.utils import set_seed


@pytest.fixture(scope="module")
def evaluator(tiny_dataset, tiny_split):
    return validation_evaluator(tiny_dataset, tiny_split, seed=5)


class TestEvaluatorParity:
    def test_reports_bitwise_identical(self, frozen_model, engine, evaluator):
        model_report = evaluator.evaluate(frozen_model, stage="test")
        engine_report = evaluator.evaluate(engine, stage="test")
        assert dataclasses.asdict(model_report) == dataclasses.asdict(engine_report)

    def test_raw_scores_bitwise_identical(self, frozen_model, engine,
                                          evaluator, tiny_split):
        inputs, _ = evaluation_inputs(tiny_split, "test", frozen_model.max_len)
        candidates = evaluator.candidates("test")
        users = np.arange(tiny_split.num_users)
        model_scores = frozen_model.score(users, inputs, candidates)
        engine_scores = engine.score(users, inputs, candidates)
        np.testing.assert_array_equal(model_scores, engine_scores)

    def test_short_padded_sequences_bitwise(self, frozen_model, engine, rng):
        # Histories shorter than max_len exercise the left-padding path.
        lengths = [1, 2, 5, frozen_model.max_len]
        histories = [rng.integers(1, frozen_model.num_items + 1, size=length)
                     for length in lengths]
        inputs = pad_left(histories, frozen_model.max_len)
        assert (inputs[:, 0] == 0).sum() >= 3  # genuinely padded rows
        candidates = rng.integers(1, frozen_model.num_items + 1,
                                  size=(len(lengths), 9))
        users = np.arange(len(lengths))
        np.testing.assert_array_equal(
            frozen_model.score(users, inputs, candidates),
            engine.score(users, inputs, candidates))


class TestRecommendParity:
    def _reference_topk(self, model, history, k, filter_seen):
        """Independent full-vocabulary reference for engine.recommend."""
        inputs = pad_left([np.asarray(history, dtype=np.int64)], model.max_len)
        with no_grad():
            states = model.sequence_output(inputs)
        last = np.ascontiguousarray(np.asarray(states.data)[0, -1, :])
        scores = (model.item_embedding.weight.data @ last).astype(np.float64)
        scores[0] = -np.inf
        if filter_seen:
            seen = np.unique(np.asarray(history, dtype=np.int64))
            scores[seen[(seen > 0) & (seen < len(scores))]] = -np.inf
        order = np.lexsort((np.arange(len(scores)), -scores))[:k]
        return [(int(item), float(scores[item])) for item in order
                if np.isfinite(scores[item])]

    @pytest.mark.parametrize("filter_seen", [True, False])
    def test_topk_matches_full_sort_reference(self, frozen_model, engine,
                                              filter_seen):
        for user in (0, 1, 17):
            expected = self._reference_topk(frozen_model,
                                            engine.history(user), 10,
                                            filter_seen)
            actual = engine.recommend(user, k=10, filter_seen=filter_seen)
            assert actual == expected

    def test_short_history_topk(self, frozen_model, engine):
        engine.set_history(777, [3])
        expected = self._reference_topk(frozen_model, [3], 5, True)
        assert engine.recommend(777, k=5) == expected


class TestZeroGraphNodes:
    def test_recommend_allocates_no_graph_nodes(self, engine):
        engine.recommend(0, k=5)  # warm everything (imports, caches)
        engine._states.pop(1, None)
        before = graph_nodes()
        engine.recommend(1, k=5)   # cold: full forward
        engine.recommend(1, k=5)   # warm: cached state
        engine.recommend_batch([(2, 5), (3, 5)])
        assert graph_nodes() - before == 0

    def test_engine_score_allocates_no_graph_nodes(self, engine, rng):
        inputs = rng.integers(1, engine.model.num_items + 1, size=(4, 12))
        candidates = rng.integers(1, engine.model.num_items + 1, size=(4, 7))
        engine.score(np.arange(4), inputs, candidates)  # warm
        before = graph_nodes()
        engine.score(np.arange(4), inputs, candidates)
        assert graph_nodes() - before == 0

    def test_training_forward_does_allocate(self, frozen_model, rng):
        # Sanity: the counter actually counts on the training path.
        inputs = rng.integers(1, frozen_model.num_items + 1, size=(2, 12))
        before = graph_nodes()
        frozen_model.sequence_output(inputs)
        assert graph_nodes() - before > 0


class TestTrainModeExportRegression:
    """A model exported in train mode must serve deterministically: dropout
    and Gumbel noise are forced off by load_artifact (eval) and hard-disabled
    by inference_mode either way."""

    @pytest.fixture(scope="class")
    def train_mode_artifact(self, tiny_dataset, tmp_path_factory):
        set_seed(42)
        model = ISRec.from_dataset(tiny_dataset, max_len=12,
                                   config=ISRecConfig(dim=16, dropout=0.5))
        model.train()  # the buggy hand-off: exporter gets a train-mode model
        path = export_artifact(
            model, tmp_path_factory.mktemp("trainmode") / "m.npz")
        return model, path

    def test_served_requests_deterministic(self, train_mode_artifact):
        _model, path = train_mode_artifact
        loaded = load_artifact(path)
        engine = RecommendationEngine(loaded)
        engine.set_history(0, [1, 2, 3])
        first = engine.recommend(0, k=10)
        engine._states.clear()  # force a fresh forward pass
        assert engine.recommend(0, k=10) == first

    def test_served_scores_match_eval_mode_model(self, train_mode_artifact,
                                                 rng):
        model, path = train_mode_artifact
        loaded = load_artifact(path)
        engine = RecommendationEngine(loaded)
        model.eval()  # the correct offline reference
        inputs = rng.integers(1, model.num_items + 1, size=(3, 12))
        candidates = rng.integers(1, model.num_items + 1, size=(3, 8))
        np.testing.assert_array_equal(
            model.score(np.arange(3), inputs, candidates),
            engine.score(np.arange(3), inputs, candidates))
