"""MicroBatcher tests: coalescing, routing, errors, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.serve import MicroBatcher


class FakeEngine:
    """Records batch compositions; result encodes (user, k) for routing."""

    def __init__(self, delay_s: float = 0.0, fail: bool = False):
        self.batches: list[list] = []
        self.delay_s = delay_s
        self.fail = fail
        self._lock = threading.Lock()

    def recommend_batch(self, requests):
        with self._lock:
            self.batches.append(list(requests))
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail:
            raise RuntimeError("engine exploded")
        return [[(user, float(k))] for user, k, _filter in requests]


class TestRouting:
    def test_single_request_roundtrip(self):
        with MicroBatcher(FakeEngine(), max_batch_size=4,
                          max_wait_s=0.001) as batcher:
            assert batcher.recommend(7, k=3) == [(7, 3.0)]

    def test_each_caller_gets_its_own_result(self):
        engine = FakeEngine(delay_s=0.002)
        results = {}
        with MicroBatcher(engine, max_batch_size=8,
                          max_wait_s=0.05) as batcher:
            def client(user):
                results[user] = batcher.recommend(user, k=user)

            threads = [threading.Thread(target=client, args=(user,))
                       for user in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for user in range(6):
            assert results[user] == [(user, float(user))]

    def test_concurrent_requests_coalesce(self):
        engine = FakeEngine()
        with MicroBatcher(engine, max_batch_size=8,
                          max_wait_s=0.25) as batcher:
            barrier = threading.Barrier(8)

            def client(user):
                barrier.wait()
                batcher.recommend(user, k=1)

            threads = [threading.Thread(target=client, args=(user,))
                       for user in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = batcher.stats()
        assert stats["requests"] == 8
        # 8 simultaneous requests against a 250ms window must share batches.
        assert stats["batches"] < 8
        assert stats["mean_batch_size"] > 1.0

    def test_window_closes_early_when_full(self):
        engine = FakeEngine()
        with MicroBatcher(engine, max_batch_size=1,
                          max_wait_s=10.0) as batcher:
            start = time.perf_counter()
            batcher.recommend(1, k=1)
            # max_batch_size=1 fills instantly; the 10s window must not apply.
            assert time.perf_counter() - start < 5.0
        assert all(len(batch) == 1 for batch in engine.batches)


class TestFailureAndLifecycle:
    def test_engine_error_propagates_to_caller(self):
        with MicroBatcher(FakeEngine(fail=True), max_batch_size=2,
                          max_wait_s=0.001) as batcher:
            with pytest.raises(RuntimeError, match="engine exploded"):
                batcher.recommend(1, k=1)

    def test_closed_batcher_rejects_requests(self):
        batcher = MicroBatcher(FakeEngine(), max_batch_size=2,
                               max_wait_s=0.001)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.recommend(1, k=1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(FakeEngine(), max_batch_size=2,
                               max_wait_s=0.001)
        batcher.close()
        batcher.close()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(FakeEngine(), max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            MicroBatcher(FakeEngine(), max_wait_s=-1.0)


class _PoisonedResults:
    """An iterable that explodes when the worker distributes results."""

    def __iter__(self):
        raise RuntimeError("poisoned results")


class PoisonEngine(FakeEngine):
    """recommend_batch succeeds, but consuming its results raises.

    The failure therefore escapes the worker's per-batch try block —
    exactly the silent-death path the batcher must survive.
    """

    def recommend_batch(self, requests):
        super().recommend_batch(requests)
        return _PoisonedResults()


class TestRegressions:
    def test_timed_out_request_is_never_computed(self):
        # A caller that times out abandons its request; the worker must
        # skip it at drain time instead of burning a forward on it.
        engine = FakeEngine(delay_s=0.2)
        with MicroBatcher(engine, max_batch_size=1,
                          max_wait_s=0.001) as batcher:
            first = threading.Thread(target=batcher.recommend, args=(1,))
            first.start()
            time.sleep(0.02)  # request 1 is now in flight on the engine
            with pytest.raises(TimeoutError):
                batcher.recommend(2, k=1, timeout=0.01)
            first.join()
            # Request 3 forces the worker through another drain cycle,
            # where the abandoned request 2 must be dropped.
            batcher.recommend(3, k=1)
            stats = batcher.stats()
        seen_users = {user for batch in engine.batches
                      for user, _k, _f in batch}
        assert 2 not in seen_users
        assert stats["cancelled_skips"] >= 1

    def test_worker_death_fails_fast_not_silently(self):
        # An exception escaping the worker loop (outside the per-batch
        # try) previously killed the thread silently; every later call
        # then blocked for its full timeout.  It must poison the batcher.
        batcher = MicroBatcher(PoisonEngine(), max_batch_size=2,
                               max_wait_s=0.001)
        with pytest.raises(RuntimeError, match="poisoned results"):
            batcher.recommend(1, k=1)
        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="worker died"):
            batcher.recommend(2, k=1, timeout=30.0)
        # Fail-fast: nowhere near the 30s caller timeout.
        assert time.perf_counter() - start < 5.0
        batcher.close()  # still clean

    def test_close_fails_queued_requests(self):
        engine = FakeEngine(delay_s=0.2)
        batcher = MicroBatcher(engine, max_batch_size=1, max_wait_s=0.001)
        outcomes = {}

        def client(user):
            try:
                outcomes[user] = batcher.recommend(user, timeout=5.0)
            except BaseException as exc:
                outcomes[user] = exc

        threads = [threading.Thread(target=client, args=(user,))
                   for user in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)  # one in flight, the rest queued
        batcher.close()
        for thread in threads:
            thread.join()
        # Nothing hangs: every caller got a result or a RuntimeError.
        for user in range(3):
            assert (not isinstance(outcomes[user], BaseException)
                    or isinstance(outcomes[user], RuntimeError))


class TestBatcherTelemetry:
    def test_batch_fill_and_latency_recorded(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with obs.use_telemetry():
                with MicroBatcher(FakeEngine(), max_batch_size=4,
                                  max_wait_s=0.001) as batcher:
                    batcher.recommend(1, k=1)
                    batcher.recommend(2, k=1)
            fill = registry.histogram("serve.batch_fill")
            assert fill.count >= 1
            assert 0.0 < fill.last <= 1.0
            latency = registry.histogram("serve.request_latency_s")
            assert latency.count == 2
        finally:
            obs.set_registry(previous)
