"""MicroBatcher tests: coalescing, routing, errors, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro import obs
from repro.serve import MicroBatcher


class FakeEngine:
    """Records batch compositions; result encodes (user, k) for routing."""

    def __init__(self, delay_s: float = 0.0, fail: bool = False):
        self.batches: list[list] = []
        self.delay_s = delay_s
        self.fail = fail
        self._lock = threading.Lock()

    def recommend_batch(self, requests):
        with self._lock:
            self.batches.append(list(requests))
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail:
            raise RuntimeError("engine exploded")
        return [[(user, float(k))] for user, k, _filter in requests]


class TestRouting:
    def test_single_request_roundtrip(self):
        with MicroBatcher(FakeEngine(), max_batch_size=4,
                          max_wait_s=0.001) as batcher:
            assert batcher.recommend(7, k=3) == [(7, 3.0)]

    def test_each_caller_gets_its_own_result(self):
        engine = FakeEngine(delay_s=0.002)
        results = {}
        with MicroBatcher(engine, max_batch_size=8,
                          max_wait_s=0.05) as batcher:
            def client(user):
                results[user] = batcher.recommend(user, k=user)

            threads = [threading.Thread(target=client, args=(user,))
                       for user in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for user in range(6):
            assert results[user] == [(user, float(user))]

    def test_concurrent_requests_coalesce(self):
        engine = FakeEngine()
        with MicroBatcher(engine, max_batch_size=8,
                          max_wait_s=0.25) as batcher:
            barrier = threading.Barrier(8)

            def client(user):
                barrier.wait()
                batcher.recommend(user, k=1)

            threads = [threading.Thread(target=client, args=(user,))
                       for user in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = batcher.stats()
        assert stats["requests"] == 8
        # 8 simultaneous requests against a 250ms window must share batches.
        assert stats["batches"] < 8
        assert stats["mean_batch_size"] > 1.0

    def test_window_closes_early_when_full(self):
        engine = FakeEngine()
        with MicroBatcher(engine, max_batch_size=1,
                          max_wait_s=10.0) as batcher:
            start = time.perf_counter()
            batcher.recommend(1, k=1)
            # max_batch_size=1 fills instantly; the 10s window must not apply.
            assert time.perf_counter() - start < 5.0
        assert all(len(batch) == 1 for batch in engine.batches)


class TestFailureAndLifecycle:
    def test_engine_error_propagates_to_caller(self):
        with MicroBatcher(FakeEngine(fail=True), max_batch_size=2,
                          max_wait_s=0.001) as batcher:
            with pytest.raises(RuntimeError, match="engine exploded"):
                batcher.recommend(1, k=1)

    def test_closed_batcher_rejects_requests(self):
        batcher = MicroBatcher(FakeEngine(), max_batch_size=2,
                               max_wait_s=0.001)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.recommend(1, k=1)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(FakeEngine(), max_batch_size=2,
                               max_wait_s=0.001)
        batcher.close()
        batcher.close()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatcher(FakeEngine(), max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_s"):
            MicroBatcher(FakeEngine(), max_wait_s=-1.0)


class TestBatcherTelemetry:
    def test_batch_fill_and_latency_recorded(self):
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with obs.use_telemetry():
                with MicroBatcher(FakeEngine(), max_batch_size=4,
                                  max_wait_s=0.001) as batcher:
                    batcher.recommend(1, k=1)
                    batcher.recommend(2, k=1)
            fill = registry.histogram("serve.batch_fill")
            assert fill.count >= 1
            assert 0.0 < fill.last <= 1.0
            latency = registry.histogram("serve.request_latency_s")
            assert latency.count == 2
        finally:
            obs.set_registry(previous)
