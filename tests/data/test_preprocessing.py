"""5-core filtering, leave-one-out splits, negative sampling."""

import numpy as np
import pytest

from repro.data.preprocessing import (
    LeaveOneOutSplit,
    five_core,
    sample_negatives,
    split_leave_one_out,
)


def seqs(*lists):
    return [np.asarray(items, dtype=np.int64) for items in lists]


class TestFiveCore:
    def test_short_users_removed(self):
        base = [1, 2, 3, 4, 5]
        sequences = seqs([1, 2, 3], *[base for _ in range(5)])
        filtered, _ = five_core(sequences, num_items=5)
        assert len(filtered) == 5

    def test_rare_items_removed_and_remapped(self):
        # Item 9 appears once; everything else appears 5 times.
        base = [1, 2, 3, 4, 5]
        sequences = seqs(base + [9], base, base, base, base)
        filtered, item_map = five_core(sequences, num_items=9)
        assert item_map[9] == 0
        assert all(9 not in seq for seq in filtered)
        # Remaining ids are contiguous starting at 1.
        used = sorted(set(int(i) for seq in filtered for i in seq))
        assert used == list(range(1, 6))

    def test_cascading_removal(self):
        """Removing an item can push a user below threshold, cascading."""
        # User 0 depends on item 9 to reach 5 interactions.
        sequences = seqs([1, 2, 3, 4, 9],
                         *[[1, 2, 3, 4, 5, 6] for _ in range(5)])
        filtered, item_map = five_core(sequences, num_items=9)
        assert len(filtered) == 5
        assert item_map[9] == 0

    def test_item_map_shape(self):
        sequences = seqs([1, 2, 3, 4, 5] * 2)
        _, item_map = five_core(sequences, num_items=7)
        assert item_map.shape == (8,)
        assert item_map[0] == 0

    def test_stable_when_everything_qualifies(self):
        base = list(range(1, 6))
        sequences = seqs(*[base for _ in range(5)])
        filtered, item_map = five_core(sequences, num_items=5)
        assert len(filtered) == 5
        np.testing.assert_array_equal(item_map[1:], np.arange(1, 6))


class TestLeaveOneOut:
    def test_split_structure(self):
        split = split_leave_one_out(seqs([1, 2, 3, 4, 5], [5, 4, 3]))
        assert split.num_users == 2
        np.testing.assert_array_equal(split.train_sequence(0), [1, 2, 3])
        np.testing.assert_array_equal(split.valid_input(0), [1, 2, 3])
        np.testing.assert_array_equal(split.test_input(0), [1, 2, 3, 4])
        assert split.valid_targets[0] == 4
        assert split.test_targets[0] == 5

    def test_short_users_dropped(self):
        split = split_leave_one_out(seqs([1, 2], [1, 2, 3]))
        assert split.num_users == 1

    def test_all_short_raises(self):
        with pytest.raises(ValueError):
            split_leave_one_out(seqs([1], [2]))

    def test_direct_construction_validates(self):
        with pytest.raises(ValueError):
            LeaveOneOutSplit(full_sequences=seqs([1, 2]))

    def test_seen_items(self):
        split = split_leave_one_out(seqs([1, 2, 3, 2]))
        assert split.seen_items(0) == {1, 2, 3}

    def test_train_sequences_list(self):
        split = split_leave_one_out(seqs([1, 2, 3, 4], [9, 8, 7]))
        trains = split.train_sequences()
        np.testing.assert_array_equal(trains[0], [1, 2])
        np.testing.assert_array_equal(trains[1], [9])


class TestNegativeSampling:
    def test_negatives_unseen_and_unique(self):
        split = split_leave_one_out(seqs([1, 2, 3, 4, 5], [6, 7, 8]))
        negatives = sample_negatives(split, num_items=50, num_negatives=20, seed=0)
        assert negatives.shape == (2, 20)
        for user in range(2):
            row = set(negatives[user].tolist())
            assert len(row) == 20
            assert not row & split.seen_items(user)
            assert all(1 <= item <= 50 for item in row)

    def test_deterministic_per_seed(self):
        split = split_leave_one_out(seqs([1, 2, 3]))
        a = sample_negatives(split, 30, 10, seed=5)
        b = sample_negatives(split, 30, 10, seed=5)
        np.testing.assert_array_equal(a, b)
        c = sample_negatives(split, 30, 10, seed=6)
        assert not np.array_equal(a, c)

    def test_too_few_items_raises(self):
        split = split_leave_one_out(seqs([1, 2, 3]))
        with pytest.raises(ValueError):
            sample_negatives(split, num_items=5, num_negatives=10)

    def test_popularity_weighted_prefers_popular(self):
        split = split_leave_one_out(seqs([1, 2, 3]))
        popularity = np.zeros(201)
        popularity[4:24] = 1000.0   # items 4..23 vastly more popular
        popularity[24:] = 0.001
        negatives = sample_negatives(split, 200, 20, seed=0, popularity=popularity)
        popular_fraction = np.isin(negatives, np.arange(4, 24)).mean()
        assert popular_fraction > 0.9

    def test_popularity_shape_validated(self):
        split = split_leave_one_out(seqs([1, 2, 3]))
        with pytest.raises(ValueError):
            sample_negatives(split, 200, 10, popularity=np.ones(5))

    def test_bit_exact_with_setdiff1d_reference(self):
        """The seen-mask candidate construction must reproduce the original
        per-user ``arange`` + ``setdiff1d`` implementation bit-for-bit: both
        yield the same sorted candidate array, so ``rng.choice`` draws
        identically for a given seed, on the uniform and popularity paths."""

        def reference(split, num_items, num_negatives, seed, popularity=None):
            rng = np.random.default_rng(seed)
            weights = None
            if popularity is not None:
                weights = np.asarray(popularity, dtype=np.float64).copy()
                weights[0] = 0.0
            negatives = np.empty((split.num_users, num_negatives), dtype=np.int64)
            for user in range(split.num_users):
                seen = split.seen_items(user)
                candidates = np.setdiff1d(np.arange(1, num_items + 1),
                                          np.fromiter(seen, dtype=np.int64))
                if weights is None:
                    negatives[user] = rng.choice(candidates, size=num_negatives,
                                                 replace=False)
                else:
                    probabilities = weights[candidates] + 1e-12
                    probabilities /= probabilities.sum()
                    negatives[user] = rng.choice(candidates, size=num_negatives,
                                                 replace=False, p=probabilities)
            return negatives

        rng = np.random.default_rng(42)
        sequences = seqs(*[rng.integers(1, 81, size=rng.integers(3, 15)).tolist()
                           for _ in range(12)])
        split = split_leave_one_out(sequences)
        popularity = np.concatenate([[0.0], rng.uniform(0.1, 50.0, size=80)])

        for seed in (0, 7):
            np.testing.assert_array_equal(
                sample_negatives(split, 80, 25, seed=seed),
                reference(split, 80, 25, seed=seed))
            np.testing.assert_array_equal(
                sample_negatives(split, 80, 25, seed=seed, popularity=popularity),
                reference(split, 80, 25, seed=seed, popularity=popularity))
