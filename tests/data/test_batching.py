"""Padding and batch iterators."""

import numpy as np
import pytest

from repro.data.batching import (
    evaluation_inputs,
    markov_batches,
    next_item_batches,
    pad_left,
    pairwise_batches,
)
from repro.data.preprocessing import split_leave_one_out


def seqs(*lists):
    return [np.asarray(items, dtype=np.int64) for items in lists]


class TestPadLeft:
    def test_pads_on_left(self):
        out = pad_left(seqs([1, 2], [3]), max_len=4)
        np.testing.assert_array_equal(out, [[0, 0, 1, 2], [0, 0, 0, 3]])

    def test_truncates_keeping_most_recent(self):
        out = pad_left(seqs([1, 2, 3, 4, 5]), max_len=3)
        np.testing.assert_array_equal(out, [[3, 4, 5]])

    def test_empty_sequence(self):
        out = pad_left(seqs([]), max_len=3)
        np.testing.assert_array_equal(out, [[0, 0, 0]])

    def test_invalid_max_len(self):
        with pytest.raises(ValueError):
            pad_left(seqs([1]), max_len=0)


class TestNextItemBatches:
    def test_input_target_shift(self, rng):
        batches = list(next_item_batches(seqs([1, 2, 3, 4]), max_len=5,
                                         batch_size=4, rng=rng))
        assert len(batches) == 1
        _users, inputs, targets, mask = batches[0]
        np.testing.assert_array_equal(inputs, [[0, 0, 1, 2, 3]])
        np.testing.assert_array_equal(targets, [[0, 0, 2, 3, 4]])
        np.testing.assert_array_equal(mask, [[0, 0, 1, 1, 1]])

    def test_short_users_skipped(self, rng):
        batches = list(next_item_batches(seqs([5], [1, 2]), max_len=4,
                                         batch_size=4, rng=rng))
        users = np.concatenate([b[0] for b in batches])
        assert users.tolist() == [1]

    def test_batching_covers_all_users(self, rng):
        sequences = seqs(*[[1, 2, 3] for _ in range(10)])
        batches = list(next_item_batches(sequences, max_len=4, batch_size=3, rng=rng))
        users = np.concatenate([b[0] for b in batches])
        assert sorted(users.tolist()) == list(range(10))
        assert len(batches) == 4

    def test_shuffle_changes_order(self):
        sequences = seqs(*[[1, 2, 3] for _ in range(20)])
        a = np.concatenate([b[0] for b in next_item_batches(
            sequences, 4, 5, np.random.default_rng(0))])
        b = np.concatenate([b[0] for b in next_item_batches(
            sequences, 4, 5, np.random.default_rng(1))])
        assert not np.array_equal(a, b)


class TestPairwiseBatches:
    def test_negatives_unseen(self, rng):
        sequences = seqs([1, 2, 3], [4, 5])
        for users, positives, negatives in pairwise_batches(sequences, num_items=30,
                                                            batch_size=3, rng=rng):
            for user, negative_row in zip(users, negatives):
                seen = set(sequences[user].tolist())
                assert not seen & set(negative_row.tolist())

    def test_every_interaction_appears(self, rng):
        sequences = seqs([1, 2], [3])
        pairs = set()
        for users, positives, _negatives in pairwise_batches(sequences, 30, 2, rng):
            pairs.update(zip(users.tolist(), positives.tolist()))
        assert pairs == {(0, 1), (0, 2), (1, 3)}

    def test_multiple_negatives_shape(self, rng):
        sequences = seqs([1, 2, 3])
        for _u, _p, negatives in pairwise_batches(sequences, 30, 8, rng,
                                                  num_negatives=4):
            assert negatives.shape[1] == 4

    def test_saturated_user_rejected(self, rng):
        """A user who consumed the whole catalog cannot get negatives."""
        sequences = seqs([1, 2, 3])
        with pytest.raises(ValueError):
            next(iter(pairwise_batches(sequences, num_items=3,
                                       batch_size=2, rng=rng)))


class TestMarkovBatches:
    def test_consecutive_pairs(self, rng):
        sequences = seqs([1, 2, 3])
        triples = set()
        for users, prev_items, next_items, _neg in markov_batches(sequences, 30, 8, rng):
            triples.update(zip(users.tolist(), prev_items.tolist(), next_items.tolist()))
        assert triples == {(0, 1, 2), (0, 2, 3)}

    def test_negatives_unseen(self, rng):
        sequences = seqs([1, 2, 3, 4])
        for users, _prev, _next, negatives in markov_batches(sequences, 20, 8, rng):
            for user, negative in zip(users, negatives):
                assert int(negative) not in set(sequences[user].tolist())


class TestEvaluationInputs:
    def test_valid_stage(self):
        split = split_leave_one_out(seqs([1, 2, 3, 4, 5]))
        inputs, targets = evaluation_inputs(split, "valid", max_len=4)
        np.testing.assert_array_equal(inputs, [[0, 1, 2, 3]])
        assert targets[0] == 4

    def test_test_stage(self):
        split = split_leave_one_out(seqs([1, 2, 3, 4, 5]))
        inputs, targets = evaluation_inputs(split, "test", max_len=4)
        np.testing.assert_array_equal(inputs, [[1, 2, 3, 4]])
        assert targets[0] == 5

    def test_bad_stage(self):
        split = split_leave_one_out(seqs([1, 2, 3]))
        with pytest.raises(ValueError):
            evaluation_inputs(split, "train", max_len=4)
