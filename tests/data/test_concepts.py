"""Concept vocabulary, relation graph, and keyword extraction."""

import numpy as np
import pytest

from repro.data.concepts import (
    build_concept_space,
    extract_concepts,
    restrict_concept_space,
    tokenize,
)
from repro.data.vocabularies import DOMAIN_COMMUNITIES, build_domain_vocabulary


class TestVocabulary:
    def test_exact_size(self):
        vocabulary = build_domain_vocabulary("beauty", 20)
        assert sum(len(words) for words in vocabulary.values()) == 20

    def test_padding_when_domain_exhausted(self):
        vocabulary = build_domain_vocabulary("epinions", 60)
        total = sum(len(words) for words in vocabulary.values())
        assert total == 60
        all_words = [w for words in vocabulary.values() for w in words]
        assert any(w.startswith("epinions_extra_") for w in all_words)

    def test_every_community_represented(self):
        vocabulary = build_domain_vocabulary("steam", 15)
        assert len(vocabulary) == len(DOMAIN_COMMUNITIES["steam"])

    def test_unknown_domain(self):
        with pytest.raises(KeyError):
            build_domain_vocabulary("nonexistent", 10)

    def test_no_duplicate_concepts(self):
        vocabulary = build_domain_vocabulary("movies", 40)
        words = [w for ws in vocabulary.values() for w in ws]
        assert len(words) == len(set(words))


class TestConceptSpace:
    @pytest.fixture()
    def space(self, rng):
        return build_concept_space("beauty", 30, rng)

    def test_sizes(self, space):
        assert space.num_concepts == 30
        assert len(space.names) == 30
        assert space.adjacency.shape == (30, 30)

    def test_adjacency_symmetric_no_self_loops(self, space):
        np.testing.assert_array_equal(space.adjacency, space.adjacency.T)
        assert np.diag(space.adjacency).sum() == 0

    def test_graph_matches_adjacency(self, space):
        assert space.graph.number_of_edges() == space.num_edges
        for a, b in space.graph.edges:
            assert space.adjacency[a, b] == 1

    def test_communities_internally_connected(self, space):
        """Each community's ring guarantees intra-community connectivity."""
        import networkx as nx
        for community_index in range(len(space.community_names)):
            members = space.members(community_index)
            if len(members) < 2:
                continue
            subgraph = space.graph.subgraph(members.tolist())
            assert nx.is_connected(subgraph)

    def test_neighbors(self, space):
        for concept in range(space.num_concepts):
            for neighbor in space.neighbors(concept):
                assert space.adjacency[concept, neighbor] == 1

    def test_index_of(self, space):
        assert space.index_of(space.names[3]) == 3


class TestTokenize:
    def test_basic(self):
        assert tokenize("The Quick, brown. fox") == ["the", "quick", "brown", "fox"]

    def test_empty(self):
        assert tokenize("") == []


class TestExtraction:
    def test_known_tokens_extracted(self, rng):
        space = build_concept_space("beauty", 20, rng)
        target = space.names[0]
        descriptions = [f"great {target} product"] * 50 + ["nothing here"] * 50
        matrix, kept = extract_concepts(descriptions, space, min_fraction=0.01)
        column = space.names.index(target)
        assert kept[column]
        assert matrix[:50, column].sum() == 50
        assert matrix[50:, column].sum() == 0

    def test_rare_concepts_filtered(self, rng):
        space = build_concept_space("beauty", 20, rng)
        rare = space.names[1]
        descriptions = [f"with {rare}"] + ["plain text"] * 999
        matrix, kept = extract_concepts(descriptions, space, min_fraction=0.005)
        column = space.names.index(rare)
        assert not kept[column]
        assert matrix[:, column].sum() == 0

    def test_overly_frequent_concepts_filtered(self, rng):
        space = build_concept_space("beauty", 20, rng)
        frequent = space.names[2]
        descriptions = [f"all about {frequent}"] * 100
        matrix, kept = extract_concepts(descriptions, space, max_fraction=0.8)
        column = space.names.index(frequent)
        assert not kept[column]

    def test_unknown_words_ignored(self, rng):
        space = build_concept_space("beauty", 10, rng)
        matrix, _kept = extract_concepts(["zzyzzx qwerty uiop"], space)
        assert matrix.sum() == 0


class TestRestriction:
    def test_restrict_preserves_relations(self, rng):
        space = build_concept_space("beauty", 20, rng)
        kept = np.ones(20, dtype=bool)
        kept[3] = kept[7] = False
        restricted, new_index = restrict_concept_space(space, kept)
        assert restricted.num_concepts == 18
        assert new_index[3] == -1 and new_index[7] == -1
        # Every surviving edge must map to an edge in the restricted space.
        for a in range(20):
            for b in range(20):
                if kept[a] and kept[b] and space.adjacency[a, b]:
                    assert restricted.adjacency[new_index[a], new_index[b]] == 1

    def test_restrict_names_aligned(self, rng):
        space = build_concept_space("steam", 15, rng)
        kept = np.ones(15, dtype=bool)
        kept[0] = False
        restricted, new_index = restrict_concept_space(space, kept)
        for old, name in enumerate(space.names):
            if kept[old]:
                assert restricted.names[new_index[old]] == name
