"""Graph emission: simulator invariants, dataset plumbing, persistence."""

import numpy as np
import pytest

from repro.data import (
    graph_profiles,
    load_dataset,
    load_dataset_file,
    save_dataset,
)
from repro.data.concepts import build_concept_space
from repro.data.dataset import InteractionDataset
from repro.data.graphs import ItemKnowledgeGraph, SocialGraph
from repro.data.registry import default_max_len
from repro.data.synthetic import (
    IntentDrivenSimulator,
    SimulatorConfig,
    generate_dataset,
)


def graph_config(**overrides):
    defaults = dict(
        name="graphs", domain="beauty", num_users=80, num_items=60,
        num_concepts=24, avg_length=10.0, max_length=40, concepts_per_item=4.0,
        true_lambda=2, intent_match_weight=8.0, popularity_weight=0.3,
        noise_scale=0.5, transition_prob=0.3, seed=11,
        kg_relations=5, kg_triples_per_item=3.0, kg_noise=0.05,
        social_degree=4.0, social_homophily=0.8,
    )
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


class TestConfigValidation:
    def test_kg_relations_floor(self):
        with pytest.raises(ValueError):
            graph_config(kg_relations=0)

    def test_kg_triples_per_item_positive(self):
        with pytest.raises(ValueError):
            graph_config(kg_triples_per_item=0.0)

    def test_kg_noise_probability_range(self):
        with pytest.raises(ValueError):
            graph_config(kg_noise=1.5)

    def test_social_degree_positive(self):
        with pytest.raises(ValueError):
            graph_config(social_degree=-1.0)

    def test_social_homophily_probability_range(self):
        with pytest.raises(ValueError):
            graph_config(social_homophily=-0.1)


class TestSimulatorInvariants:
    @pytest.fixture(scope="class")
    def simulator(self):
        simulator = IntentDrivenSimulator(graph_config())
        simulator.dataset = simulator.generate()
        return simulator

    def test_dataset_carries_graphs(self, simulator):
        dataset = simulator.dataset
        assert dataset.has_knowledge_graph
        assert dataset.has_social_graph
        assert dataset.knowledge_graph.num_triples > 0
        assert dataset.social_graph.num_edges > 0

    def test_entity_space_layout(self, simulator):
        kg = simulator.dataset.knowledge_graph
        assert kg.num_items == simulator.dataset.num_items
        assert kg.num_entities == (simulator.dataset.num_items
                                   + simulator.dataset.concept_space.num_concepts)
        assert kg.num_attribute_entities == \
            simulator.dataset.concept_space.num_concepts

    def test_triples_reference_only_live_entities(self):
        """After 5-core filtering every surviving triple must point at a
        live (remapped) entity — the dataclass validates bounds, but this
        pins the stronger property that every *dropped* raw entity's
        triples were dropped with it."""
        # A sparse world (many items, few interactions) so 5-core drops some.
        simulator = IntentDrivenSimulator(graph_config(
            num_users=50, num_items=150, avg_length=6.0, seed=3))
        simulator.dataset = simulator.generate()
        truth = simulator.ground_truth
        kg = simulator.dataset.knowledge_graph
        raw_items = simulator.config.num_items
        item_map = simulator._item_map
        # Raw items that the 5-core dropped (item_map == 0).
        dropped = set(np.flatnonzero(item_map[1:] == 0) + 1)
        assert dropped, "test world should drop at least one item"
        # Surviving triple count = raw triples whose endpoints all live.
        item_alive = item_map[1:] != 0
        concept_alive = truth.concept_index_map >= 0

        def alive(raw_entity):
            if raw_entity <= raw_items:
                return item_alive[raw_entity - 1]
            return concept_alive[raw_entity - raw_items - 1]

        survivors = sum(
            1 for head, _, tail in truth.kg_triples_raw
            if alive(head) and alive(tail))
        # Remapping can merge duplicates, so <=; but nothing extra appears.
        assert 0 < kg.num_triples <= survivors

    def test_entity_degrees_cover_noise_free_items(self, simulator):
        """The attribute layer gives (almost) every item at least one
        triple; sanity-check overall connectivity."""
        degree = simulator.dataset.knowledge_graph.entity_degree()
        assert degree[0] == 0
        items = degree[1:simulator.dataset.num_items + 1]
        assert (items > 0).mean() > 0.8

    def test_social_edges_are_canonical_and_symmetric(self, simulator):
        social = simulator.dataset.social_graph
        assert social.num_users == simulator.dataset.num_users
        assert (social.edges[:, 0] < social.edges[:, 1]).all()
        sym = social.symmetric_edges()
        assert len(sym) == 2 * social.num_edges
        # Every (u, v) has its mirror (v, u) in the adjacency stream.
        pairs = {tuple(edge) for edge in sym.tolist()}
        assert all((v, u) in pairs for u, v in pairs)
        assert social.degree().sum() == 2 * social.num_edges

    def test_neighbors_match_edges(self, simulator):
        social = simulator.dataset.social_graph
        user = int(social.edges[0, 0])
        neighbors = social.neighbors(user)
        assert len(neighbors)
        mask = (social.edges == user).any(axis=1)
        assert len(neighbors) == int(mask.sum())

    def test_bit_reproducible_per_seed(self):
        first = generate_dataset(graph_config())
        second = generate_dataset(graph_config())
        np.testing.assert_array_equal(first.knowledge_graph.triples,
                                      second.knowledge_graph.triples)
        np.testing.assert_array_equal(first.social_graph.edges,
                                      second.social_graph.edges)

    def test_legacy_generation_bit_identical(self):
        """Graph emission must not perturb the interaction stream: the
        samplers draw from dedicated RNG streams, so a graph-bearing
        world's sequences equal the legacy (graphs-off) world's exactly."""
        legacy = generate_dataset(graph_config(kg_relations=None,
                                               social_degree=None))
        graphed = generate_dataset(graph_config())
        assert legacy.knowledge_graph is None
        assert legacy.social_graph is None
        assert not legacy.has_knowledge_graph
        assert not legacy.has_social_graph
        assert len(legacy.sequences) == len(graphed.sequences)
        for a, b in zip(legacy.sequences, graphed.sequences):
            np.testing.assert_array_equal(a, b)

    def test_homophily_concentrates_edges_within_communities(self):
        """High vs zero homophily must be statistically distinguishable
        through the same-community edge fraction."""
        def same_community_rate(homophily):
            simulator = IntentDrivenSimulator(graph_config(
                num_users=200, social_homophily=homophily))
            simulator.generate()
            truth = simulator.ground_truth
            edges = truth.social_edges_raw
            community = truth.user_community
            assert len(edges) > 50
            return (community[edges[:, 0]] == community[edges[:, 1]]).mean()

        assert same_community_rate(1.0) > same_community_rate(0.0) + 0.2


class TestGraphContainers:
    def test_triples_shape_rejected(self):
        with pytest.raises(ValueError, match="head, relation, tail"):
            ItemKnowledgeGraph(triples=np.zeros((2, 2), dtype=np.int64),
                               num_items=3, num_entities=5, num_relations=2)

    def test_entity_bounds_rejected(self):
        with pytest.raises(ValueError, match="entities"):
            ItemKnowledgeGraph(triples=np.array([[1, 0, 9]]),
                               num_items=3, num_entities=5, num_relations=2)

    def test_relation_bounds_rejected(self):
        with pytest.raises(ValueError, match="relations"):
            ItemKnowledgeGraph(triples=np.array([[1, 4, 2]]),
                               num_items=3, num_entities=5, num_relations=2)

    def test_relation_name_count_rejected(self):
        with pytest.raises(ValueError, match="relation names"):
            ItemKnowledgeGraph(triples=np.array([[1, 0, 2]]),
                               num_items=3, num_entities=5, num_relations=2,
                               relation_names=["only_one"])

    def test_is_item_split(self):
        kg = ItemKnowledgeGraph(triples=np.array([[1, 0, 4]]),
                                num_items=3, num_entities=5, num_relations=1)
        assert kg.is_item(2)
        assert not kg.is_item(4)
        np.testing.assert_array_equal(
            kg.is_item(np.array([1, 3, 4, 5])), [True, True, False, False])

    def test_triples_of_item(self):
        kg = ItemKnowledgeGraph(
            triples=np.array([[1, 0, 4], [2, 0, 4], [1, 0, 5]]),
            num_items=3, num_entities=5, num_relations=1)
        assert len(kg.triples_of_item(1)) == 2
        with pytest.raises(IndexError):
            kg.triples_of_item(4)

    def test_social_self_loop_rejected(self):
        with pytest.raises(ValueError, match="canonical"):
            SocialGraph(edges=np.array([[2, 2]]), num_users=4)

    def test_social_reversed_pair_rejected(self):
        with pytest.raises(ValueError, match="canonical"):
            SocialGraph(edges=np.array([[3, 1]]), num_users=4)

    def test_social_duplicate_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SocialGraph(edges=np.array([[0, 1], [0, 1]]), num_users=4)

    def test_social_bounds_rejected(self):
        with pytest.raises(ValueError, match="endpoints"):
            SocialGraph(edges=np.array([[0, 7]]), num_users=4)


class TestDatasetValidation:
    def _dataset(self, **extra):
        space = build_concept_space("beauty", 5, np.random.default_rng(0))
        return InteractionDataset(
            name="unit", sequences=[np.array([1, 2, 3], dtype=np.int64)],
            num_items=3, item_concepts=np.zeros((4, 5), dtype=np.float32),
            concept_space=space, **extra)

    def test_kg_item_count_mismatch_rejected(self):
        kg = ItemKnowledgeGraph(triples=np.empty((0, 3), dtype=np.int64),
                                num_items=9, num_entities=9, num_relations=1)
        with pytest.raises(ValueError, match="knowledge_graph"):
            self._dataset(knowledge_graph=kg)

    def test_social_user_count_mismatch_rejected(self):
        social = SocialGraph(edges=np.empty((0, 2), dtype=np.int64),
                             num_users=9)
        with pytest.raises(ValueError, match="social_graph"):
            self._dataset(social_graph=social)

    def test_statistics_without_graphs(self):
        stats = self._dataset().graph_statistics()
        assert stats.num_triples == 0
        assert stats.num_social_edges == 0
        assert stats.avg_social_degree == 0.0

    def test_statistics_with_graphs(self):
        kg = ItemKnowledgeGraph(triples=np.array([[1, 0, 4], [2, 0, 5]]),
                                num_items=3, num_entities=5, num_relations=1)
        social = SocialGraph(edges=np.array([[0, 1]]), num_users=2)
        dataset = self._dataset(knowledge_graph=kg)
        stats = dataset.graph_statistics()
        assert stats.num_triples == 2
        assert stats.triples_per_item == pytest.approx(2 / 3)
        # Social-only path through the module helper.
        from repro.data.graphs import graph_statistics
        assert graph_statistics(None, social).num_social_edges == 1


class TestPersistenceAndRegistry:
    def test_io_round_trip_preserves_graphs(self, tmp_path):
        dataset = generate_dataset(graph_config())
        path = tmp_path / "graphs.npz"
        save_dataset(dataset, path)
        loaded = load_dataset_file(path)
        assert loaded.has_knowledge_graph and loaded.has_social_graph
        np.testing.assert_array_equal(loaded.knowledge_graph.triples,
                                      dataset.knowledge_graph.triples)
        np.testing.assert_array_equal(loaded.social_graph.edges,
                                      dataset.social_graph.edges)
        kg, back = dataset.knowledge_graph, loaded.knowledge_graph
        assert back.num_entities == kg.num_entities
        assert back.num_relations == kg.num_relations
        assert back.relation_names == kg.relation_names
        assert back.entity_names == kg.entity_names
        assert loaded.social_graph.num_users == dataset.social_graph.num_users

    def test_io_round_trip_without_graphs(self, tmp_path, tiny_dataset):
        path = tmp_path / "plain.npz"
        save_dataset(tiny_dataset, path)
        loaded = load_dataset_file(path)
        assert loaded.knowledge_graph is None
        assert loaded.social_graph is None

    def test_graph_profiles_cover_every_base(self):
        names = graph_profiles()
        assert "beauty-kg" in names
        assert "ml-1m-kg-dense" in names
        assert all(name.endswith(("-kg", "-kg-dense")) for name in names)

    def test_registry_loads_graph_variant(self):
        plain = load_dataset("beauty", scale=0.3)
        graphed = load_dataset("beauty-kg", scale=0.3)
        assert plain.knowledge_graph is None
        assert graphed.has_knowledge_graph and graphed.has_social_graph
        # Separately cached worlds; graph emission leaves sequences alone.
        assert graphed is load_dataset("beauty-kg", scale=0.3)
        assert len(plain.sequences) == len(graphed.sequences)
        for a, b in zip(plain.sequences, graphed.sequences):
            np.testing.assert_array_equal(a, b)

    def test_dense_variant_is_denser(self):
        base = load_dataset("beauty-kg", scale=0.3)
        dense = load_dataset("beauty-kg-dense", scale=0.3)
        assert dense.knowledge_graph.num_triples > \
            base.knowledge_graph.num_triples
        assert dense.social_graph.num_edges > base.social_graph.num_edges

    def test_unknown_suffix_rejected(self):
        with pytest.raises(KeyError, match="graph variant"):
            load_dataset("beauty-kg-bogus")

    def test_default_max_len_resolves_suffix(self):
        assert default_max_len("ml-1m-kg") == default_max_len("ml-1m")
        assert default_max_len("beauty-kg-dense") == default_max_len("beauty")
