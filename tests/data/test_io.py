"""Dataset persistence round-trips."""

import numpy as np
import pytest

from repro.data.io import load_dataset_file, save_dataset


class TestDatasetIO:
    def test_roundtrip(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "tiny")
        assert path.suffix == ".npz"
        loaded = load_dataset_file(path)

        assert loaded.name == tiny_dataset.name
        assert loaded.num_items == tiny_dataset.num_items
        assert loaded.num_users == tiny_dataset.num_users
        for a, b in zip(loaded.sequences, tiny_dataset.sequences):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(loaded.item_concepts,
                                      tiny_dataset.item_concepts)
        np.testing.assert_array_equal(loaded.concept_space.adjacency,
                                      tiny_dataset.concept_space.adjacency)
        assert loaded.concept_space.names == tiny_dataset.concept_space.names
        assert loaded.item_titles == tiny_dataset.item_titles

    def test_loaded_graph_matches(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "tiny.npz")
        loaded = load_dataset_file(path)
        assert (loaded.concept_space.graph.number_of_edges()
                == tiny_dataset.concept_space.graph.number_of_edges())

    def test_statistics_preserved(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "tiny.npz")
        loaded = load_dataset_file(path)
        assert loaded.statistics() == tiny_dataset.statistics()
        assert loaded.concept_statistics() == tiny_dataset.concept_statistics()

    def test_version_check(self, tiny_dataset, tmp_path):
        import json

        path = save_dataset(tiny_dataset, tmp_path / "tiny.npz")
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["version"] = 999
        arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"),
                                       dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ValueError):
            load_dataset_file(path)
