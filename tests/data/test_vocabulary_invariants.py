"""Cross-cutting invariants of the domain vocabularies."""

import pytest

from repro.data.vocabularies import (
    DOMAIN_COMMUNITIES,
    FILLER_WORDS,
    build_domain_vocabulary,
)


class TestVocabularyInvariants:
    def test_fillers_never_collide_with_concepts(self):
        """Extraction correctness depends on fillers not being concepts."""
        all_concepts = {word
                        for communities in DOMAIN_COMMUNITIES.values()
                        for words in communities.values()
                        for word in words}
        assert not all_concepts & set(FILLER_WORDS)

    def test_concepts_unique_within_domain(self):
        for domain, communities in DOMAIN_COMMUNITIES.items():
            words = [w for ws in communities.values() for w in ws]
            assert len(words) == len(set(words)), f"duplicates in {domain}"

    def test_concepts_are_single_tokens(self):
        """The keyword extractor is token-based; multi-word concepts would
        never match."""
        for communities in DOMAIN_COMMUNITIES.values():
            for words in communities.values():
                for word in words:
                    assert " " not in word
                    assert word == word.lower()

    @pytest.mark.parametrize("domain", sorted(DOMAIN_COMMUNITIES))
    def test_profile_sizes_served_without_extras(self, domain):
        """Every registry profile's concept count fits the real vocabulary."""
        from repro.data.registry import PROFILES

        available = sum(len(ws) for ws in DOMAIN_COMMUNITIES[domain].values())
        for profile in PROFILES.values():
            if profile.domain == domain:
                assert profile.num_concepts <= available, (
                    f"{profile.name} requests {profile.num_concepts} concepts "
                    f"but {domain} only has {available}"
                )

    def test_round_robin_balances_communities(self):
        vocabulary = build_domain_vocabulary("beauty", 12)
        sizes = [len(words) for words in vocabulary.values()]
        assert max(sizes) - min(sizes) <= 1
