"""Hypothesis property tests on the data pipeline."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.batching import pad_left
from repro.data.preprocessing import five_core, split_leave_one_out
from repro.eval.metrics import ranks_from_scores


def sequences_strategy(max_items=20):
    item = st.integers(min_value=1, max_value=max_items)
    seq = st.lists(item, min_size=1, max_size=15)
    return st.lists(seq, min_size=1, max_size=12)


@settings(max_examples=50, deadline=None)
@given(sequences_strategy())
def test_five_core_invariants(raw):
    sequences = [np.asarray(seq, dtype=np.int64) for seq in raw]
    filtered, item_map = five_core(sequences, num_items=20)
    # Every surviving user has >= 5 interactions over surviving items.
    counts = np.zeros(int(item_map.max()) + 1, dtype=np.int64)
    for seq in filtered:
        assert len(seq) >= 5
        assert seq.min() >= 1
        np.add.at(counts, seq, 1)
    # Every surviving item has >= 5 interactions.
    assert (counts[1:] >= 5).all()
    # Item ids are contiguous 1..N.
    surviving = np.sort(item_map[item_map > 0])
    np.testing.assert_array_equal(surviving, np.arange(1, len(surviving) + 1))


@settings(max_examples=50, deadline=None)
@given(sequences_strategy())
def test_five_core_idempotent(raw):
    sequences = [np.asarray(seq, dtype=np.int64) for seq in raw]
    once, item_map = five_core(sequences, num_items=20)
    num_items = int(item_map.max())
    if num_items == 0:
        return
    twice, second_map = five_core(once, num_items=num_items)
    assert len(twice) == len(once)
    for a, b in zip(once, twice):
        np.testing.assert_array_equal(second_map[a], b)
        np.testing.assert_array_equal(a, b)  # second pass changes nothing


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=1, max_value=50),
                         min_size=0, max_size=12), min_size=1, max_size=8),
       st.integers(min_value=1, max_value=15))
def test_pad_left_properties(raw, max_len):
    sequences = [np.asarray(seq, dtype=np.int64) for seq in raw]
    padded = pad_left(sequences, max_len)
    assert padded.shape == (len(sequences), max_len)
    for row, seq in zip(padded, sequences):
        tail = seq[-max_len:]
        # The suffix equals the (possibly truncated) sequence...
        np.testing.assert_array_equal(row[max_len - len(tail):], tail)
        # ...and everything before it is padding.
        assert (row[: max_len - len(tail)] == 0).all()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(min_value=1, max_value=30),
                         min_size=3, max_size=10, unique=True),
                min_size=1, max_size=8))
def test_leave_one_out_reconstruction(raw):
    sequences = [np.asarray(seq, dtype=np.int64) for seq in raw]
    split = split_leave_one_out(sequences)
    for user in range(split.num_users):
        full = split.full_sequences[user]
        rebuilt = np.concatenate([
            split.train_sequence(user),
            [split.valid_targets[user]],
            [split.test_targets[user]],
        ])
        np.testing.assert_array_equal(rebuilt, full)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=100))
def test_rank_is_permutation_invariant_over_negatives(num_candidates, seed):
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=(1, num_candidates))
    base = ranks_from_scores(scores)[0]
    shuffled = scores.copy()
    shuffled[0, 1:] = rng.permutation(shuffled[0, 1:])
    assert ranks_from_scores(shuffled)[0] == base
