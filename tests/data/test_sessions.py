"""Session emission: simulator invariants, dataset plumbing, persistence."""

import numpy as np
import pytest

from repro.data import load_dataset, load_dataset_file, save_dataset, session_starts
from repro.data.concepts import build_concept_space
from repro.data.dataset import InteractionDataset
from repro.data.synthetic import IntentDrivenSimulator, SimulatorConfig, generate_dataset


def session_config(**overrides):
    defaults = dict(
        name="sessions", domain="beauty", num_users=80, num_items=60,
        num_concepts=24, avg_length=10.0, max_length=40, concepts_per_item=4.0,
        true_lambda=2, intent_match_weight=8.0, popularity_weight=0.3,
        noise_scale=0.5, transition_prob=0.3, seed=11,
        session_avg_length=4.0, session_coherence=0.9,
        session_boundary_prob=0.9,
    )
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


class TestConfigValidation:
    def test_session_min_length_floor(self):
        with pytest.raises(ValueError):
            session_config(session_min_length=0)

    def test_avg_below_min_rejected(self):
        with pytest.raises(ValueError):
            session_config(session_avg_length=1.0, session_min_length=3)

    def test_coherence_probability_range(self):
        with pytest.raises(ValueError):
            session_config(session_coherence=1.5)

    def test_boundary_probability_range(self):
        with pytest.raises(ValueError):
            session_config(session_boundary_prob=-0.1)


class TestSessionInvariants:
    @pytest.fixture(scope="class")
    def simulator(self):
        simulator = IntentDrivenSimulator(session_config())
        simulator.dataset = simulator.generate()
        return simulator

    def test_dataset_carries_sessions(self, simulator):
        dataset = simulator.dataset
        assert dataset.has_sessions
        assert len(dataset.session_ids) == dataset.num_users

    def test_sessions_partition_every_stream(self, simulator):
        """Session ids start at 0, never skip, never decrease: a partition
        of the stream into contiguous runs."""
        for seq, sessions in zip(simulator.dataset.sequences,
                                 simulator.dataset.session_ids):
            assert len(sessions) == len(seq)
            assert sessions[0] == 0
            steps = np.diff(sessions)
            assert ((steps == 0) | (steps == 1)).all()

    def test_session_starts_reconstruct_partition(self, simulator):
        for sessions in simulator.dataset.session_ids:
            starts = session_starts(sessions)
            assert starts[0] == 0
            # Lengths of the runs sum to the stream length and each run is
            # a single session id.
            bounds = np.concatenate([starts, [len(sessions)]])
            for left, right in zip(bounds[:-1], bounds[1:]):
                assert len(set(sessions[left:right].tolist())) == 1

    def test_raw_sessions_cover_raw_streams(self, simulator):
        truth = simulator.ground_truth
        assert len(truth.user_sessions) == simulator.config.num_users
        for seq, sessions in zip(simulator._raw_sequences, truth.user_sessions):
            assert len(sessions) == len(seq)

    def test_single_event_sessions_are_legal(self):
        """min=avg=1 forces every session to a single event."""
        dataset = generate_dataset(session_config(
            session_avg_length=1.0, session_min_length=1, seed=5))
        for sessions in dataset.session_ids:
            assert (np.diff(sessions) == 1).all()

    def test_whole_stream_session_is_legal(self):
        """A huge mean session length leaves most users with one session."""
        dataset = generate_dataset(session_config(
            session_avg_length=500.0, session_min_length=200, seed=5))
        assert any((sessions == 0).all() for sessions in dataset.session_ids)

    def test_bit_reproducible_per_seed(self):
        first = generate_dataset(session_config())
        second = generate_dataset(session_config())
        for a, b in zip(first.session_ids, second.session_ids):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(first.sequences, second.sequences):
            np.testing.assert_array_equal(a, b)

    def test_legacy_generation_unchanged(self):
        """session_avg_length=None reproduces the pre-session generator
        bit-for-bit (same RNG draw order) and carries no session ids."""
        legacy = generate_dataset(session_config(session_avg_length=None))
        again = generate_dataset(session_config(session_avg_length=None))
        assert legacy.session_ids is None
        assert not legacy.has_sessions
        for a, b in zip(legacy.sequences, again.sequences):
            np.testing.assert_array_equal(a, b)


class TestCoherenceSignal:
    """Within-session intent coherence must be statistically detectable."""

    @staticmethod
    def _stay_rates(simulator):
        """Fraction of steps whose intent set is unchanged, split by
        whether the step crosses a session boundary."""
        truth = simulator.ground_truth
        within_stays = boundary_stays = within = boundary = 0
        for trace, sessions in zip(truth.user_intents, truth.user_sessions):
            for step in range(1, len(trace)):
                same = (len(trace[step]) == len(trace[step - 1])
                        and (trace[step] == trace[step - 1]).all())
                if sessions[step] != sessions[step - 1]:
                    boundary += 1
                    boundary_stays += same
                else:
                    within += 1
                    within_stays += same
        assert within > 50 and boundary > 50, "not enough steps to compare"
        return within_stays / within, boundary_stays / boundary

    def test_coherent_within_shifting_at_boundaries(self):
        simulator = IntentDrivenSimulator(session_config(num_users=150))
        simulator.generate()
        within_rate, boundary_rate = self._stay_rates(simulator)
        # Coherence 0.9 holds intents ~90% of within-session steps;
        # boundary_prob 0.9 shifts them at almost every boundary.
        assert within_rate > 0.75
        assert boundary_rate < within_rate - 0.2

    def test_shuffled_control_shows_no_coherence(self):
        """With coherence 0 and boundary behaviour matching the plain
        transition kernel, the two stay rates are indistinguishable."""
        simulator = IntentDrivenSimulator(session_config(
            num_users=150, session_coherence=0.0,
            session_boundary_prob=0.3, transition_prob=0.3))
        simulator.generate()
        within_rate, boundary_rate = self._stay_rates(simulator)
        assert abs(within_rate - boundary_rate) < 0.1


class TestDatasetValidation:
    def _dataset(self, session_ids):
        space = build_concept_space("beauty", 5, np.random.default_rng(0))
        return InteractionDataset(
            name="unit", sequences=[np.array([1, 2, 3], dtype=np.int64)],
            num_items=3, item_concepts=np.zeros((4, 5), dtype=np.float32),
            concept_space=space, session_ids=session_ids)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="session ids"):
            self._dataset([np.array([0, 0], dtype=np.int64)])

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            self._dataset([np.array([1, 1, 1], dtype=np.int64)])

    def test_no_skipped_ids(self):
        with pytest.raises(ValueError, match="unit steps"):
            self._dataset([np.array([0, 0, 2], dtype=np.int64)])

    def test_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="session_ids"):
            self._dataset([])

    def test_statistics(self):
        dataset = self._dataset([np.array([0, 0, 1], dtype=np.int64)])
        assert dataset.num_sessions == 2
        assert dataset.avg_session_length() == pytest.approx(1.5)


class TestPersistenceAndRegistry:
    def test_io_round_trip_preserves_sessions(self, tmp_path):
        dataset = generate_dataset(session_config())
        path = tmp_path / "sessions.npz"
        save_dataset(dataset, path)
        loaded = load_dataset_file(path)
        assert loaded.has_sessions
        for a, b in zip(dataset.session_ids, loaded.session_ids):
            np.testing.assert_array_equal(a, b)

    def test_io_round_trip_without_sessions(self, tmp_path, tiny_dataset):
        path = tmp_path / "plain.npz"
        save_dataset(tiny_dataset, path)
        assert load_dataset_file(path).session_ids is None

    def test_registry_flag_is_a_different_world(self):
        plain = load_dataset("epinions", scale=0.3)
        sessioned = load_dataset("epinions", scale=0.3, sessions=True)
        assert plain.session_ids is None
        assert sessioned.has_sessions
        # Different generated world, separately cached.
        assert sessioned is load_dataset("epinions", scale=0.3, sessions=True)
        assert plain is load_dataset("epinions", scale=0.3)


class TestSessionStarts:
    def test_empty(self):
        assert len(session_starts(np.empty(0, dtype=np.int64))) == 0

    def test_single_session(self):
        np.testing.assert_array_equal(
            session_starts(np.zeros(4, dtype=np.int64)), [0])

    def test_multiple_sessions(self):
        np.testing.assert_array_equal(
            session_starts(np.array([0, 0, 1, 2, 2])), [0, 2, 3])
