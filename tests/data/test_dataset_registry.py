"""InteractionDataset invariants and the profile registry."""

import numpy as np
import pytest

from repro.data import available_profiles, default_max_len, load_dataset
from repro.data.dataset import InteractionDataset
from repro.data.concepts import build_concept_space


class TestInteractionDataset:
    def test_statistics(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        assert stats.num_users == tiny_dataset.num_users
        assert stats.num_interactions == sum(len(s) for s in tiny_dataset.sequences)
        expected_density = stats.num_interactions / (stats.num_users * stats.num_items)
        assert stats.density == pytest.approx(expected_density)
        assert stats.avg_length == pytest.approx(
            stats.num_interactions / stats.num_users)

    def test_concept_statistics(self, tiny_dataset):
        stats = tiny_dataset.concept_statistics()
        assert stats.num_concepts == tiny_dataset.num_concepts
        assert stats.num_edges == tiny_dataset.concept_space.num_edges
        assert stats.avg_concepts_per_item > 0

    def test_item_popularity(self, tiny_dataset):
        counts = tiny_dataset.item_popularity()
        assert counts[0] == 0
        assert counts.sum() == tiny_dataset.num_interactions

    def test_concepts_of_item(self, tiny_dataset):
        names = tiny_dataset.concepts_of_item(1)
        assert all(name in tiny_dataset.concept_space.names for name in names)
        with pytest.raises(IndexError):
            tiny_dataset.concepts_of_item(0)
        with pytest.raises(IndexError):
            tiny_dataset.concepts_of_item(tiny_dataset.num_items + 1)

    def test_title_of_item(self, tiny_dataset):
        assert isinstance(tiny_dataset.title_of_item(1), str)

    def test_validation_rejects_bad_concept_matrix(self, rng):
        space = build_concept_space("beauty", 5, rng)
        with pytest.raises(ValueError):
            InteractionDataset(
                name="bad", sequences=[np.array([1, 2])], num_items=2,
                item_concepts=np.zeros((2, 5), dtype=np.float32),  # needs 3 rows
                concept_space=space,
            )

    def test_validation_rejects_nonzero_padding_row(self, rng):
        space = build_concept_space("beauty", 5, rng)
        concepts = np.zeros((3, 5), dtype=np.float32)
        concepts[0, 0] = 1.0
        with pytest.raises(ValueError):
            InteractionDataset(name="bad", sequences=[np.array([1])],
                               num_items=2, item_concepts=concepts,
                               concept_space=space)

    def test_validation_rejects_out_of_range_items(self, rng):
        space = build_concept_space("beauty", 5, rng)
        with pytest.raises(ValueError):
            InteractionDataset(name="bad", sequences=[np.array([0, 1])],
                               num_items=2,
                               item_concepts=np.zeros((3, 5), dtype=np.float32),
                               concept_space=space)


class TestRegistry:
    def test_profiles_available(self):
        names = available_profiles()
        assert set(names) == {"beauty", "steam", "epinions", "ml-1m", "ml-20m"}

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            load_dataset("netflix")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("beauty", scale=0)

    def test_cache_returns_same_object(self):
        a = load_dataset("epinions")
        b = load_dataset("epinions")
        assert a is b

    def test_cache_bypass(self):
        a = load_dataset("epinions")
        b = load_dataset("epinions", cache=False)
        assert a is not b

    def test_scaled_profile_smaller(self):
        small = load_dataset("epinions", scale=0.5, cache=False)
        full = load_dataset("epinions")
        assert small.num_users < full.num_users

    def test_default_max_len(self):
        assert default_max_len("beauty") == 20
        assert default_max_len("unknown-profile") == 20

    def test_profile_density_ordering(self):
        """The paper's sparsity ordering must hold in the miniatures:
        MovieLens profiles dense, Beauty sparsest among the rest."""
        density = {name: load_dataset(name).statistics().density
                   for name in available_profiles()}
        assert density["ml-1m"] > density["ml-20m"] > density["beauty"]
        assert density["steam"] > density["beauty"]
        assert density["epinions"] > density["beauty"]
