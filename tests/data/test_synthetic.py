"""The intent-driven simulator: invariants of the generated worlds."""

import numpy as np
import pytest

from repro.data.synthetic import IntentDrivenSimulator, SimulatorConfig, generate_dataset


def small_config(**overrides):
    defaults = dict(
        name="unit", domain="beauty", num_users=60, num_items=50,
        num_concepts=20, avg_length=7.0, max_length=40, concepts_per_item=4.0,
        true_lambda=2, intent_match_weight=6.0, popularity_weight=0.3,
        noise_scale=0.6, seed=3,
    )
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


class TestConfigValidation:
    def test_positive_counts(self):
        with pytest.raises(ValueError):
            small_config(num_users=0)

    def test_lambda_positive(self):
        with pytest.raises(ValueError):
            small_config(true_lambda=0)

    def test_min_length_floor(self):
        with pytest.raises(ValueError):
            small_config(min_length=2)

    def test_transition_probability_range(self):
        with pytest.raises(ValueError):
            small_config(transition_prob=1.5)

    def test_repeat_free_needs_enough_items(self):
        with pytest.raises(ValueError):
            small_config(num_items=50, max_length=60)


class TestGeneratedDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset(small_config())

    def test_items_one_indexed(self, dataset):
        for seq in dataset.sequences:
            assert seq.min() >= 1
            assert seq.max() <= dataset.num_items

    def test_no_repeats_within_user(self, dataset):
        for seq in dataset.sequences:
            assert len(set(seq.tolist())) == len(seq)

    def test_five_core_holds(self, dataset):
        counts = dataset.item_popularity()
        assert (counts[1:] >= 5).all()
        assert all(len(seq) >= 5 for seq in dataset.sequences)

    def test_item_concepts_aligned(self, dataset):
        assert dataset.item_concepts.shape == (dataset.num_items + 1,
                                               dataset.num_concepts)
        np.testing.assert_array_equal(dataset.item_concepts[0], 0)

    def test_titles_present(self, dataset):
        assert len(dataset.item_titles) == dataset.num_items
        assert all(isinstance(t, str) for t in dataset.item_titles)

    def test_deterministic_for_seed(self):
        a = generate_dataset(small_config())
        b = generate_dataset(small_config())
        assert len(a.sequences) == len(b.sequences)
        for sa, sb in zip(a.sequences, b.sequences):
            np.testing.assert_array_equal(sa, sb)

    def test_different_seed_different_world(self):
        a = generate_dataset(small_config())
        b = generate_dataset(small_config(seed=99))
        same = len(a.sequences) == len(b.sequences) and all(
            np.array_equal(sa, sb) for sa, sb in zip(a.sequences, b.sequences)
        )
        assert not same


class TestGroundTruth:
    def test_ground_truth_recorded(self):
        simulator = IntentDrivenSimulator(small_config())
        simulator.generate()
        truth = simulator.ground_truth
        assert truth is not None
        assert truth.item_concepts_true.shape[0] == simulator.config.num_items
        assert len(truth.user_intents) == simulator.config.num_users

    def test_intent_traces_have_true_lambda(self):
        config = small_config()
        simulator = IntentDrivenSimulator(config)
        simulator.generate()
        for trace in simulator.ground_truth.user_intents[:10]:
            for intents in trace:
                assert len(intents) == config.true_lambda

    def test_transitions_follow_graph_or_jump(self):
        """Most intent moves must be to graph neighbours (or stay put)."""
        config = small_config(community_jump_prob=0.0)
        simulator = IntentDrivenSimulator(config)
        simulator.generate()
        space = simulator.space
        neighbour_moves = 0
        other_moves = 0
        for trace in simulator.ground_truth.user_intents:
            for before, after in zip(trace[:-1], trace[1:]):
                before_set = set(before.tolist())
                for concept in after.tolist():
                    if concept in before_set:
                        continue
                    sources = before_set | set()
                    if any(space.adjacency[s, concept] for s in sources):
                        neighbour_moves += 1
                    else:
                        other_moves += 1
        # Collision re-sampling can produce rare non-neighbour moves.
        assert neighbour_moves > 5 * max(other_moves, 1)

    def test_intent_signal_drives_choices(self):
        """Consecutive items must share concepts far above chance.

        This is the property ISRec exploits: because intents drift slowly on
        the concept graph, the concepts of item t+1 overlap those of item t
        much more than random item pairs do.
        """
        simulator = IntentDrivenSimulator(small_config())
        dataset = simulator.generate()
        rng = np.random.default_rng(0)
        consecutive = []
        random_pairs = []
        concepts = dataset.item_concepts
        for seq in dataset.sequences[:50]:
            for a, b in zip(seq[:-1], seq[1:]):
                consecutive.append(float(concepts[a] @ concepts[b]))
                r1, r2 = rng.integers(1, dataset.num_items + 1, size=2)
                random_pairs.append(float(concepts[r1] @ concepts[r2]))
        assert np.mean(consecutive) > 1.5 * np.mean(random_pairs)
