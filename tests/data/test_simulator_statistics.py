"""Statistical properties of the generator beyond structural invariants."""

import numpy as np
import pytest

from repro.data.synthetic import IntentDrivenSimulator, SimulatorConfig


def config(**overrides):
    defaults = dict(
        name="stat", domain="beauty", num_users=120, num_items=90,
        num_concepts=24, avg_length=8.0, max_length=40, concepts_per_item=4.0,
        true_lambda=2, intent_match_weight=8.0, popularity_weight=0.3,
        noise_scale=0.5, transition_prob=0.3, seed=11,
    )
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


class TestLengthDistribution:
    def test_average_length_near_target(self):
        simulator = IntentDrivenSimulator(config(num_users=300, num_items=200))
        dataset = simulator.generate()
        # 5-core trims a little; allow a generous band around the target.
        assert 6.0 <= dataset.statistics().avg_length <= 11.0

    def test_min_length_respected_pre_filter(self):
        simulator = IntentDrivenSimulator(config())
        simulator.generate()
        for seq in simulator._raw_sequences:
            assert len(seq) >= simulator.config.min_length


class TestPopularitySkew:
    def test_popularity_weight_skews_consumption(self):
        flat = IntentDrivenSimulator(config(popularity_weight=0.0, seed=5))
        skewed = IntentDrivenSimulator(config(popularity_weight=1.5, seed=5))
        flat_counts = np.sort(flat.generate().item_popularity()[1:])[::-1]
        skew_counts = np.sort(skewed.generate().item_popularity()[1:])[::-1]

        def gini(counts):
            counts = np.sort(counts.astype(np.float64))
            n = len(counts)
            index = np.arange(1, n + 1)
            return float((2 * index - n - 1).dot(counts) / (n * counts.sum()))

        assert gini(skew_counts) > gini(flat_counts)


class TestIntentCoherence:
    def test_higher_match_weight_increases_coherence(self):
        """Stronger intent matching makes consecutive items share concepts."""
        def coherence(weight: float) -> float:
            simulator = IntentDrivenSimulator(config(intent_match_weight=weight,
                                                     seed=3))
            dataset = simulator.generate()
            concepts = dataset.item_concepts
            values = []
            for seq in dataset.sequences:
                for a, b in zip(seq[:-1], seq[1:]):
                    values.append(float(concepts[a] @ concepts[b]))
            return float(np.mean(values))

        assert coherence(10.0) > coherence(0.5)

    def test_transition_prob_zero_freezes_intents(self):
        simulator = IntentDrivenSimulator(config(transition_prob=0.0,
                                                 community_jump_prob=0.0))
        simulator.generate()
        for trace in simulator.ground_truth.user_intents[:20]:
            for before, after in zip(trace[:-1], trace[1:]):
                np.testing.assert_array_equal(before, after)
