"""The user-tracking variant of five_core."""

import numpy as np

from repro.data.preprocessing import five_core


def seqs(*lists):
    return [np.asarray(items, dtype=np.int64) for items in lists]


class TestReturnUsers:
    def test_surviving_user_indices(self):
        base = [1, 2, 3, 4, 5]
        sequences = seqs([1, 2], base, [3], base, base, base, base)
        filtered, _map, users = five_core(sequences, num_items=5,
                                          return_users=True)
        assert users.tolist() == [1, 3, 4, 5, 6]
        assert len(filtered) == 5

    def test_alignment_with_sequences(self):
        base = [1, 2, 3, 4, 5]
        marked = [5, 4, 3, 2, 1]
        sequences = seqs([9], base, marked, base, base, base)
        filtered, item_map, users = five_core(sequences, num_items=9,
                                              return_users=True)
        # Original user 2 had the reversed sequence; find it in the output.
        position = users.tolist().index(2)
        np.testing.assert_array_equal(filtered[position],
                                      item_map[np.asarray(marked)])

    def test_default_signature_unchanged(self):
        base = [1, 2, 3, 4, 5]
        result = five_core(seqs(base, base, base, base, base), num_items=5)
        assert len(result) == 2

    def test_cascade_updates_user_list(self):
        # User 0 depends on item 9; once 9 dies user 0 follows.
        base = [1, 2, 3, 4, 5, 6]
        sequences = seqs([1, 2, 3, 4, 9], *[base for _ in range(5)])
        _filtered, _map, users = five_core(sequences, num_items=9,
                                           return_users=True)
        assert 0 not in users.tolist()
        assert users.tolist() == [1, 2, 3, 4, 5]
