"""The package's public API surface: everything in __all__ exists and more."""

import importlib

import pytest

MODULES = [
    "repro",
    "repro.tensor",
    "repro.nn",
    "repro.optim",
    "repro.data",
    "repro.models",
    "repro.core",
    "repro.eval",
    "repro.train",
    "repro.analysis",
    "repro.experiments",
    "repro.utils",
]


class TestPublicSurface:
    @pytest.mark.parametrize("module_name", MODULES)
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        assert exported, f"{module_name} should declare __all__"
        for name in exported:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 20

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_headline_names(self):
        import repro

        for name in ("ISRec", "ISRecConfig", "IntentTracer", "load_dataset",
                     "split_leave_one_out", "RankingEvaluator", "TrainConfig",
                     "quick_isrec"):
            assert hasattr(repro, name)

    def test_no_accidental_torch_dependency(self):
        """The whole point: the package must import without deep-learning
        frameworks installed."""
        import sys

        for module_name in MODULES:
            importlib.import_module(module_name)
        assert "torch" not in sys.modules
        assert "tensorflow" not in sys.modules
