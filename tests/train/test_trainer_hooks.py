"""Trainer hooks and bookkeeping details."""

import numpy as np

from repro import nn
from repro.train import TrainConfig, Trainer


class HookedModel(nn.Module):
    name = "hooked"

    def __init__(self):
        super().__init__()
        self.weight = nn.Parameter(np.ones(1, dtype=np.float32))
        self.epochs_seen: list[int] = []

    def training_batches(self, rng):
        yield None

    def training_loss(self, _batch):
        return (self.weight * self.weight).sum()

    def on_epoch_end(self, epoch: int) -> None:
        self.epochs_seen.append(epoch)


class TestHooks:
    def test_on_epoch_end_called_every_epoch(self):
        model = HookedModel()
        Trainer(model, TrainConfig(epochs=4, lr=0.01)).fit()
        assert model.epochs_seen == [1, 2, 3, 4]

    def test_hook_optional(self):
        class PlainModel(nn.Module):
            name = "plain"

            def __init__(self):
                super().__init__()
                self.weight = nn.Parameter(np.ones(1, dtype=np.float32))

            def training_batches(self, rng):
                yield None

            def training_loss(self, _batch):
                return (self.weight * self.weight).sum()

        history = Trainer(PlainModel(), TrainConfig(epochs=2, lr=0.01)).fit()
        assert history.epochs_run == 2


class TestValidationBookkeeping:
    def test_validation_epochs_recorded(self):
        model = HookedModel()
        scores = iter(np.linspace(0, 1, 50))
        history = Trainer(model, TrainConfig(epochs=6, eval_every=3, lr=0.01),
                          validate=lambda: float(next(scores))).fit()
        recorded_epochs = [epoch for epoch, _ in history.validation]
        assert recorded_epochs == [3, 6]

    def test_final_epoch_always_validated(self):
        model = HookedModel()
        history = Trainer(model, TrainConfig(epochs=5, eval_every=4, lr=0.01),
                          validate=lambda: 1.0).fit()
        recorded_epochs = [epoch for epoch, _ in history.validation]
        assert recorded_epochs == [4, 5]
