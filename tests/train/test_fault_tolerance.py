"""End-to-end fault tolerance: kill-and-resume, divergence recovery,
checkpoint-corruption fallback — all driven by the deterministic
fault-injection harness in :mod:`repro.utils.faults`."""

import warnings

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor
from repro.train import (
    CheckpointManager,
    TrainConfig,
    Trainer,
    TrainingDiverged,
    load_train_state,
)
from repro.utils import FaultPlan, FaultyModel, InjectedCrash, truncate_file
from repro.utils.serialization import CheckpointIntegrityError

pytestmark = pytest.mark.faults


class RngLinearModel(nn.Module):
    """Least squares through the Trainer protocol with rng-shuffled batches.

    Batch order depends on the trainer's generator, so bit-exact resume
    requires the checkpoint to restore the RNG stream faithfully.
    """

    name = "rng-linear"

    def __init__(self, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.inputs = rng.normal(size=(32, 4)).astype(np.float32)
        true_w = np.array([1.0, -2.0, 3.0, 0.5], dtype=np.float32)
        self.targets = self.inputs @ true_w
        self.weight = nn.Parameter(np.zeros(4, dtype=np.float32))

    def training_batches(self, rng):
        order = rng.permutation(len(self.inputs))
        for start in range(0, len(order), 8):
            yield order[start:start + 8]

    def training_loss(self, batch):
        predictions = Tensor(self.inputs[batch]) @ self.weight.reshape(4, 1)
        residual = predictions.reshape(-1) - Tensor(self.targets[batch])
        return (residual * residual).sum()


def config_for(tmp_path=None, **overrides) -> TrainConfig:
    defaults = dict(epochs=6, lr=0.01, eval_every=100, patience=0, seed=3)
    if tmp_path is not None:
        defaults["checkpoint_dir"] = str(tmp_path / "ckpts")
    defaults.update(overrides)
    return TrainConfig(**defaults)


class TestKillAndResume:
    def test_resume_is_bit_exact(self, tmp_path):
        """An injected mid-epoch crash + resume must reproduce the exact
        final weights of an uninterrupted run with the same seed."""
        reference = RngLinearModel()
        Trainer(reference, config_for()).fit()

        config = config_for(tmp_path)
        # 4 batches/epoch: global step 14 is epoch 4, batch 2 (mid-epoch).
        crashing = FaultyModel(RngLinearModel(), FaultPlan(crash_steps={14}))
        with pytest.raises(InjectedCrash):
            Trainer(crashing, config).fit()

        resumed = RngLinearModel()
        history = Trainer(resumed, config).fit(resume_from=config.checkpoint_dir)
        assert history.epochs_run == config.epochs
        np.testing.assert_array_equal(resumed.weight.data,
                                      reference.weight.data)

    def test_resume_true_uses_config_dir(self, tmp_path):
        config = config_for(tmp_path, epochs=3)
        Trainer(RngLinearModel(), config).fit()
        model = RngLinearModel()
        history = Trainer(model, config).fit(resume_from=True)
        # The run was already complete: nothing re-trains, history intact.
        assert history.epochs_run == 3

    def test_resume_from_empty_dir_starts_fresh(self, tmp_path):
        config = config_for(tmp_path, epochs=2)
        model = RngLinearModel()
        history = Trainer(model, config).fit(resume_from=str(tmp_path / "ckpts"))
        assert history.epochs_run == 2

    def test_rotation_keeps_last_k(self, tmp_path):
        config = config_for(tmp_path, epochs=5, keep_checkpoints=2)
        Trainer(RngLinearModel(), config).fit()
        manager = CheckpointManager(config.checkpoint_dir, keep=2)
        names = [path.name for path in manager.checkpoints()]
        assert names == ["ckpt-epoch00004.npz", "ckpt-epoch00005.npz"]

    def test_checkpoint_every(self, tmp_path):
        config = config_for(tmp_path, epochs=6, checkpoint_every=3,
                            keep_checkpoints=10)
        Trainer(RngLinearModel(), config).fit()
        manager = CheckpointManager(config.checkpoint_dir)
        epochs = [int(path.stem.split("epoch")[1])
                  for path in manager.checkpoints()]
        assert epochs == [3, 6]


class TestDivergenceRecovery:
    def test_nan_loss_recovers_with_lr_halving(self):
        """A one-shot NaN loss rolls back the epoch, halves the LR, and the
        run completes; the retry is recorded in the history."""
        model = FaultyModel(RngLinearModel(), FaultPlan(nan_loss_steps={5}))
        trainer = Trainer(model, config_for(epochs=4))
        history = trainer.fit()
        assert history.epochs_run == 4
        assert len(history.divergence_recoveries) == 1
        recovery = history.divergence_recoveries[0]
        assert recovery["epoch"] == 2  # step 5 is the first batch of epoch 2
        assert "non-finite training loss" in recovery["reason"]
        assert recovery["lr_after"] == pytest.approx(recovery["lr_before"] / 2)
        assert trainer.optimizer.lr == pytest.approx(0.005)

    def test_exhausted_budget_raises_training_diverged(self):
        model = FaultyModel(RngLinearModel(), FaultPlan(nan_loss_prob=1.0))
        trainer = Trainer(model, config_for(epochs=4, divergence_retries=2))
        with pytest.raises(TrainingDiverged) as excinfo:
            trainer.fit()
        error = excinfo.value
        assert isinstance(error, RuntimeError)
        assert error.epoch == 1
        assert error.retries == 2
        assert error.lr == pytest.approx(0.01 / 4)  # halved twice
        assert "non-finite training loss" in str(error)
        assert "epoch 1" in str(error)

    def test_rollback_restores_epoch_start_weights(self):
        """The partially-updated weights from the poisoned epoch attempt must
        not leak into the retried epoch."""
        plan = FaultPlan(nan_loss_steps={2})  # second batch of epoch 1
        model = FaultyModel(RngLinearModel(), plan)
        history = Trainer(model, config_for(epochs=1)).fit()
        assert len(history.divergence_recoveries) == 1
        # A clean run at the halved LR from init must match exactly.
        reference = RngLinearModel()
        reference_config = config_for(epochs=1, lr=0.005)
        Trainer(reference, reference_config).fit()
        np.testing.assert_array_equal(model.wrapped.weight.data,
                                      reference.weight.data)

    def test_injection_is_deterministic(self):
        plans = [FaultPlan(seed=9, nan_loss_prob=0.3) for _ in range(2)]
        fired = []
        for plan in plans:
            model = FaultyModel(RngLinearModel(), plan)
            try:
                Trainer(model, config_for(epochs=2, divergence_retries=50)).fit()
            except TrainingDiverged:
                pass
            fired.append(model.faults_fired)
        assert fired[0] == fired[1]


class TestCorruptionFallback:
    def test_truncated_checkpoint_falls_back_in_rotation(self, tmp_path):
        config = config_for(tmp_path, epochs=5)
        Trainer(RngLinearModel(), config).fit()
        manager = CheckpointManager(config.checkpoint_dir,
                                    keep=config.keep_checkpoints)
        newest = manager.checkpoints()[-1]
        truncate_file(newest, fraction=0.5)
        with pytest.warns(RuntimeWarning, match="integrity"):
            state, path = manager.load_latest()
        assert state.epoch == 4
        assert path.name == "ckpt-epoch00004.npz"

    def test_resume_after_truncation_continues_training(self, tmp_path):
        config = config_for(tmp_path, epochs=6)
        crashing = FaultyModel(RngLinearModel(), FaultPlan(crash_steps={18}))
        with pytest.raises(InjectedCrash):
            Trainer(crashing, config).fit()
        manager = CheckpointManager(config.checkpoint_dir)
        truncate_file(manager.checkpoints()[-1], fraction=0.4)
        model = RngLinearModel()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            history = Trainer(model, config).fit(resume_from=config.checkpoint_dir)
        assert history.epochs_run == 6
        # Still bit-exact: the fallback epoch replays deterministically.
        reference = RngLinearModel()
        Trainer(reference, config_for()).fit()
        np.testing.assert_array_equal(model.weight.data, reference.weight.data)

    def test_all_checkpoints_corrupt_raises(self, tmp_path):
        config = config_for(tmp_path, epochs=4)
        Trainer(RngLinearModel(), config).fit()
        manager = CheckpointManager(config.checkpoint_dir)
        for path in manager.checkpoints():
            truncate_file(path, fraction=0.3)
        with pytest.warns(RuntimeWarning):
            with pytest.raises(CheckpointIntegrityError):
                manager.load_latest()

    def test_bitflip_detected_by_checksum(self, tmp_path):
        config = config_for(tmp_path, epochs=2)
        Trainer(RngLinearModel(), config).fit()
        manager = CheckpointManager(config.checkpoint_dir)
        newest = manager.checkpoints()[-1]
        # np.savez stores float arrays uncompressed: flip one payload byte
        # near the middle of the archive without touching the zip directory.
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        newest.write_bytes(bytes(raw))
        with pytest.raises(CheckpointIntegrityError):
            load_train_state(newest)


class TestBestCheckpointRegression:
    def test_early_stop_restores_best_and_exposes_path(self, tmp_path):
        """Early stopping on a degrading score must restore the best weights
        and expose an on-disk checkpoint of them."""
        model = RngLinearModel()
        scores = iter([1.0, 0.9, 0.8, 0.7, 0.6, 0.5])
        snapshots = []

        def validate():
            snapshots.append(model.weight.data.copy())
            return next(scores)

        config = config_for(tmp_path, epochs=20, eval_every=1, patience=2)
        trainer = Trainer(model, config, validate=validate)
        history = trainer.fit()
        assert history.stopped_early
        assert history.best_epoch == 1
        np.testing.assert_array_equal(model.weight.data, snapshots[0])
        assert not model.training  # left in eval mode
        # The best weights are independently reloadable from disk.
        path = trainer.best_checkpoint_path
        assert path is not None and path.exists()
        clone = RngLinearModel()
        from repro.utils import load_checkpoint

        load_checkpoint(clone, path, strict_class=False)
        np.testing.assert_array_equal(clone.weight.data, snapshots[0])

    def test_best_on_final_scheduled_eval(self, tmp_path):
        """When the final scheduled eval is the best one, the restore path
        and best_checkpoint_path must reflect it."""
        model = RngLinearModel()
        scores = iter([0.1, 0.2, 0.3])
        config = config_for(tmp_path, epochs=6, eval_every=2, patience=5)
        trainer = Trainer(model, config, validate=lambda: next(scores))
        history = trainer.fit()
        assert not history.stopped_early
        assert history.best_epoch == 6
        assert trainer.best_checkpoint_path is not None
        clone = RngLinearModel()
        from repro.utils import load_checkpoint

        load_checkpoint(clone, trainer.best_checkpoint_path, strict_class=False)
        np.testing.assert_array_equal(clone.weight.data, model.weight.data)

    def test_no_checkpoint_dir_keeps_path_none(self):
        trainer = Trainer(RngLinearModel(), config_for(epochs=2, eval_every=1),
                          validate=lambda: 1.0)
        trainer.fit()
        assert trainer.best_checkpoint_path is None


class TestResumeWithValidation:
    def test_resume_preserves_early_stopping_state(self, tmp_path):
        """bad_evals and the best score survive a crash/resume cycle, so a
        resumed run stops at the same epoch as an uninterrupted one."""
        def scripted_scores():
            return iter([1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4])

        config = config_for(tmp_path, epochs=20, eval_every=1, patience=2)
        reference_scores = scripted_scores()
        reference_history = Trainer(
            RngLinearModel(), config_for(epochs=20, eval_every=1, patience=2),
            validate=lambda: next(reference_scores)).fit()

        # Crash after epoch 2's checkpoint: steps 1-8 are epochs 1-2.
        crash_scores = scripted_scores()
        crashing = FaultyModel(RngLinearModel(), FaultPlan(crash_steps={9}))
        with pytest.raises(InjectedCrash):
            Trainer(crashing, config, validate=lambda: next(crash_scores)).fit()

        resumed_scores = scripted_scores()
        next(resumed_scores), next(resumed_scores)  # epochs 1-2 already done
        history = Trainer(RngLinearModel(), config,
                          validate=lambda: next(resumed_scores)
                          ).fit(resume_from=True)
        assert history.stopped_early == reference_history.stopped_early
        assert history.epochs_run == reference_history.epochs_run
        assert history.best_epoch == reference_history.best_epoch
        assert history.validation == reference_history.validation
