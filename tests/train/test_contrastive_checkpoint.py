"""Contrastive training vs checkpoints: aux-RNG persistence + compatibility.

The intent-contrastive objective adds a second RNG stream (the crop
sampler) to training; bit-exact resume now requires that stream to ride
along in checkpoints.  These tests pin three contracts:

- checkpoints written *before* the objective existed (no ``aux_rng``
  extras key) still resume cleanly and bit-exactly;
- a contrastive run killed mid-sweep resumes to the same weights and the
  same auxiliary RNG state as an uninterrupted run;
- divergence-recovery snapshots roll the auxiliary stream back together
  with the weights.
"""

import copy

import numpy as np
import pytest

from repro import ISRec, ISRecConfig, TrainConfig
from repro.train import CheckpointManager, Trainer
from repro.utils import set_seed


def make_model(tiny_dataset):
    set_seed(2024)
    return ISRec.from_dataset(tiny_dataset, max_len=12,
                              config=ISRecConfig(dim=16))


def config_for(tmp_path=None, **overrides) -> TrainConfig:
    defaults = dict(epochs=4, batch_size=32, lr=3e-3, eval_every=10,
                    patience=0, seed=0)
    if tmp_path is not None:
        defaults["checkpoint_dir"] = str(tmp_path / "ckpts")
    defaults.update(overrides)
    return TrainConfig(**defaults)


def assert_same_weights(left, right):
    left_state, right_state = left.state_dict(), right.state_dict()
    assert left_state.keys() == right_state.keys()
    for key in left_state:
        np.testing.assert_array_equal(left_state[key], right_state[key],
                                      err_msg=key)


class TestConfigValidation:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="contrastive_weight"):
            TrainConfig(contrastive_weight=-0.1)

    def test_non_finite_weight_rejected(self):
        with pytest.raises(ValueError, match="contrastive_weight"):
            TrainConfig(contrastive_weight=float("nan"))

    def test_zero_temperature_rejected(self):
        with pytest.raises(ValueError, match="contrastive_temperature"):
            TrainConfig(contrastive_temperature=0.0)


class TestAuxRngPlumbing:
    def test_disarmed_by_default(self, tiny_dataset):
        model = make_model(tiny_dataset)
        model.configure_contrastive(config_for())
        assert model.aux_rng_state() is None
        with pytest.raises(RuntimeError, match="disarmed"):
            model.contrastive_loss(np.array([[0, 1, 2]]))

    def test_state_round_trip_replays_crops(self, tiny_dataset):
        model = make_model(tiny_dataset)
        model.configure_contrastive(config_for(contrastive_weight=0.1))
        inputs = np.array([[0, 0, 1, 2, 3, 4, 5, 6],
                           [0, 0, 0, 0, 0, 7, 8, 9]], dtype=np.int64)
        state = model.aux_rng_state()
        first = model._crop_view(inputs)
        assert model.aux_rng_state() != state  # the draw advanced the stream
        model.set_aux_rng_state(state)
        np.testing.assert_array_equal(model._crop_view(inputs), first)

    def test_crops_are_left_padded_prefixes(self, tiny_dataset):
        model = make_model(tiny_dataset)
        model.configure_contrastive(config_for(contrastive_weight=0.1))
        inputs = np.array([[0, 0, 1, 2, 3, 4, 5, 6],
                           [0, 0, 0, 0, 0, 7, 8, 9]], dtype=np.int64)
        for _ in range(20):
            view = model._crop_view(inputs)
            for row, original in zip(view, inputs):
                real = original[original > 0]
                kept = row[row > 0]
                # A prefix of the real items, at least 60% of them, padded
                # back to the left edge.
                assert len(kept) >= int(np.ceil(0.6 * len(real)))
                np.testing.assert_array_equal(kept, real[:len(kept)])
                assert (row[:len(row) - len(kept)] == 0).all()


class TestCheckpointCompatibility:
    def test_pre_contrastive_checkpoint_resumes_bit_exact(self, tiny_dataset,
                                                          tiny_split,
                                                          tmp_path):
        """A checkpoint without the ``aux_rng`` extras key — exactly what
        pre-objective code wrote — must resume cleanly and bit-exactly."""
        reference = make_model(tiny_dataset)
        reference.fit(tiny_dataset, tiny_split, config_for())

        partial_config = config_for(tmp_path, epochs=2)
        partial = make_model(tiny_dataset)
        partial.fit(tiny_dataset, tiny_split, partial_config)
        manager = CheckpointManager(partial_config.checkpoint_dir)
        state, _path = manager.load_latest()
        # Baseline runs carry no auxiliary stream: same payload shape as a
        # checkpoint written before the objective existed.
        assert "aux_rng" not in state.extras

        resumed = make_model(tiny_dataset)
        resumed.fit(tiny_dataset, tiny_split, config_for(tmp_path))
        assert_same_weights(resumed, reference)

    def test_contrastive_resume_is_bit_exact(self, tiny_dataset, tiny_split,
                                             tmp_path):
        """Kill a contrastive run after epoch 2, resume to epoch 4: weights
        *and* the auxiliary RNG stream match the uninterrupted run."""
        contrastive = dict(contrastive_weight=0.1)
        reference = make_model(tiny_dataset)
        reference.fit(tiny_dataset, tiny_split, config_for(**contrastive))

        partial_config = config_for(tmp_path, epochs=2, **contrastive)
        partial = make_model(tiny_dataset)
        partial.fit(tiny_dataset, tiny_split, partial_config)
        manager = CheckpointManager(partial_config.checkpoint_dir)
        state, _path = manager.load_latest()
        assert "aux_rng" in state.extras

        resumed = make_model(tiny_dataset)
        resumed.fit(tiny_dataset, tiny_split, config_for(tmp_path, **contrastive))
        assert_same_weights(resumed, reference)
        assert resumed.aux_rng_state() == reference.aux_rng_state()

    def test_resume_differs_without_aux_restore(self, tiny_dataset,
                                                tiny_split, tmp_path):
        """Deleting the aux stream from the checkpoint makes the resumed
        crops diverge — proof the extras key is load-bearing."""
        contrastive = dict(contrastive_weight=0.1)
        reference = make_model(tiny_dataset)
        reference.fit(tiny_dataset, tiny_split, config_for(**contrastive))

        partial_config = config_for(tmp_path, epochs=2, **contrastive)
        partial = make_model(tiny_dataset)
        partial.fit(tiny_dataset, tiny_split, partial_config)
        # The stream advanced during epochs 1-2, so a fresh seed-derived
        # stream (what a resume without the key would reconstruct) differs.
        assert (partial.aux_rng_state()
                != np.random.default_rng(
                    partial.CONTRASTIVE_SEED_OFFSET
                    + partial_config.seed).bit_generator.state)


class TestSnapshotRollback:
    def test_snapshot_restores_aux_stream(self, tiny_dataset):
        """Divergence recovery rolls the auxiliary RNG back with the
        weights, so the retried epoch redraws the same crops."""
        model = make_model(tiny_dataset)
        config = config_for(contrastive_weight=0.1)
        model.configure_contrastive(config)
        trainer = Trainer(model, config)
        rng = np.random.default_rng(config.seed)
        snapshot = trainer._capture_snapshot(rng)
        before = model.aux_rng_state()
        model._crop_view(np.array([[1, 2, 3, 4, 5, 6]]))
        assert model.aux_rng_state() != before
        trainer._restore_snapshot(snapshot, rng)
        assert model.aux_rng_state() == before

    def test_snapshot_of_disarmed_model_is_none(self, tiny_dataset):
        model = make_model(tiny_dataset)
        config = config_for()
        model.configure_contrastive(config)
        trainer = Trainer(model, config)
        snapshot = trainer._capture_snapshot(np.random.default_rng(0))
        assert snapshot["aux_rng"] is None
        trainer._restore_snapshot(snapshot, np.random.default_rng(0))
        assert model.aux_rng_state() is None
