"""The generic trainer: loops, early stopping, best-weight restoration."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, functional as F
from repro.train import TrainConfig, Trainer


class QuadraticModel(nn.Module):
    """Minimise ||w - target||^2 through the trainer protocol."""

    name = "quadratic"

    def __init__(self, target):
        super().__init__()
        self.target = np.asarray(target, dtype=np.float32)
        self.weight = nn.Parameter(np.zeros_like(self.target))

    def training_batches(self, rng):
        yield None  # a single dummy batch per epoch

    def training_loss(self, _batch):
        diff = self.weight - Tensor(self.target)
        return (diff * diff).sum()


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(eval_every=0)
        with pytest.raises(ValueError):
            TrainConfig(patience=-1)


class TestTrainer:
    def test_loss_decreases(self):
        model = QuadraticModel([1.0, -2.0, 3.0])
        history = Trainer(model, TrainConfig(epochs=100, lr=0.1)).fit()
        assert history.losses[-1] < history.losses[0]
        np.testing.assert_allclose(model.weight.data, model.target, atol=0.2)

    def test_history_length(self):
        model = QuadraticModel([1.0])
        history = Trainer(model, TrainConfig(epochs=7, lr=0.1)).fit()
        assert history.epochs_run == 7

    def test_early_stopping_and_restoration(self):
        """A validation score that degrades must stop training and restore
        the best weights."""
        model = QuadraticModel([1.0])
        scores = iter([1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
        snapshots = []

        def validate():
            snapshots.append(model.weight.data.copy())
            return next(scores)

        config = TrainConfig(epochs=50, lr=0.1, eval_every=1, patience=2)
        history = Trainer(model, config, validate=validate).fit()
        assert history.stopped_early
        assert history.best_epoch == 1
        assert history.best_score == 1.0
        # Restored to the weights observed at the best validation.
        np.testing.assert_allclose(model.weight.data, snapshots[0])

    def test_no_early_stop_when_improving(self):
        model = QuadraticModel([1.0])
        counter = iter(range(100))

        def validate():
            return float(next(counter))

        config = TrainConfig(epochs=6, lr=0.1, eval_every=2, patience=1)
        history = Trainer(model, config, validate=validate).fit()
        assert not history.stopped_early
        assert history.epochs_run == 6
        assert len(history.validation) == 3

    def test_model_left_in_eval_mode(self):
        model = QuadraticModel([1.0])
        Trainer(model, TrainConfig(epochs=1, lr=0.1)).fit()
        assert not model.training

    def test_gradient_clipping_applied(self):
        """With an extreme learning target, clipping keeps updates bounded."""
        model = QuadraticModel([1e6])
        config = TrainConfig(epochs=1, lr=1.0, clip_norm=1.0)
        Trainer(model, config).fit()
        # Without clipping the first step would be 2e6; with clip_norm=1 it is 1.
        assert abs(model.weight.data[0]) <= 1.0 + 1e-5
