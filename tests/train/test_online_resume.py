"""Bit-exact resume of an OnlineLearner killed mid-fine-tune.

The twin protocol: learner A crashes partway through round 2 (an injected
``training_loss`` crash standing in for a hard kill — the process state is
discarded, only the checkpoint directory and the still-buffered event ring
survive).  Learner B starts from the same initial artifact, restores A's
round-1 checkpoint, re-drains the same events, and replays round 2.  A
control learner C runs both rounds uninterrupted.  B and C must end
bit-identical: weights, Adam moments, both RNG streams, the history
store, and the event cursor — and stay identical through a further round.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.config import ISRecConfig
from repro.core.isrec import ISRec
from repro.online import EventLog, OnlineConfig, OnlineLearner
from repro.serve import export_artifact, load_artifact
from repro.train.checkpoint import CheckpointManager
from repro.utils import set_seed
from repro.utils.faults import FaultPlan, FaultyModel, InjectedCrash
from repro.utils.seeding import get_rng

pytestmark = pytest.mark.faults

BASE_HISTORIES = {user: [1 + (3 * user + offset) % 50 for offset in range(6)]
                  for user in range(8)}
PHASE_1 = [(user, 1 + (7 * user + 3) % 50) for user in range(8)]
PHASE_2 = [(user, 1 + (11 * user + 5) % 50) for user in range(8)]
PHASE_3 = [(user, 1 + (13 * user + 2) % 50) for user in range(8)]


@pytest.fixture(scope="module")
def initial_artifact(tiny_dataset, tmp_path_factory):
    set_seed(321)
    model = ISRec.from_dataset(tiny_dataset, max_len=12,
                               config=ISRecConfig(dim=16))
    return export_artifact(
        model, tmp_path_factory.mktemp("online-resume") / "init.npz")


def make_config(checkpoint_dir) -> OnlineConfig:
    # batch_size 4 over 8 touched users -> 2 optimisation steps per round,
    # so the injected crash at global step 4 lands mid-round-2, after
    # step 3 already moved the weights.
    return OnlineConfig(batch_size=4, steps_per_round=2, lr=3e-3, seed=11,
                        checkpoint_dir=str(checkpoint_dir))


def append_phase(events: EventLog, phase) -> None:
    for user, item in phase:
        events.append(user, item)


def assert_states_equal(left: OnlineLearner, right: OnlineLearner) -> None:
    for name, array in left.model.state_dict().items():
        np.testing.assert_array_equal(
            array, right.model.state_dict()[name], err_msg=name)
    right_optim = right.optimizer.state_dict()
    for key, value in left.optimizer.state_dict().items():
        if isinstance(value, (list, tuple)):
            for index, item in enumerate(value):
                np.testing.assert_array_equal(
                    np.asarray(item), np.asarray(right_optim[key][index]),
                    err_msg=f"optimizer {key}[{index}]")
        else:
            assert right_optim[key] == value, f"optimizer {key}"
    assert left._rng.bit_generator.state == right._rng.bit_generator.state
    assert left.cursor == right.cursor
    assert left.rounds == right.rounds
    assert left.histories() == right.histories()


def test_killed_mid_round_resumes_bit_exact(initial_artifact, tmp_path):
    # --- twin A: crashes mid-round-2 --------------------------------
    set_seed(2025)
    events = EventLog(capacity=1024)
    append_phase(events, PHASE_1)
    faulty = FaultyModel(load_artifact(initial_artifact),
                         FaultPlan(crash_steps={4}))
    learner_a = OnlineLearner(faulty, events,
                              config=make_config(tmp_path / "a"),
                              base_histories=BASE_HISTORIES)
    first = learner_a.fine_tune_round()
    assert first["steps"] == 2
    append_phase(events, PHASE_2)
    with pytest.raises(InjectedCrash):
        learner_a.fine_tune_round()
    assert faulty.faults_fired == [(4, "crash")]

    # The on-disk cursor never ran ahead of the weights: the crashed
    # round drained in memory, but the newest checkpoint is round 1's.
    state, _path = CheckpointManager(tmp_path / "a").load_latest()
    assert state.extras["rounds"] == 1
    assert state.extras["event_cursor"] == len(PHASE_1)

    # --- twin B: fresh process, resume, replay round 2 ---------------
    set_seed(999)  # deliberately misaligned; resume must restore it
    learner_b = OnlineLearner(load_artifact(initial_artifact), events,
                              config=make_config(tmp_path / "a"))
    assert learner_b.resume() is True
    assert learner_b.rounds == 1
    assert learner_b.cursor == len(PHASE_1)
    replay = learner_b.fine_tune_round()
    assert replay["events"] == len(PHASE_2)
    assert replay["steps"] == 2

    # --- control C: the same two rounds, never interrupted -----------
    set_seed(2025)
    events_c = EventLog(capacity=1024)
    append_phase(events_c, PHASE_1)
    learner_c = OnlineLearner(load_artifact(initial_artifact), events_c,
                              config=make_config(tmp_path / "c"),
                              base_histories=BASE_HISTORIES)
    learner_c.fine_tune_round()
    append_phase(events_c, PHASE_2)
    learner_c.fine_tune_round()

    assert_states_equal(learner_b, learner_c)

    # The alignment is real, not coincidental: one more identical round
    # keeps the twins in lockstep (optimizer moments and RNG included).
    append_phase(events, PHASE_3)
    append_phase(events_c, PHASE_3)
    # Both twins live in one process and therefore share the global RNG
    # stream; give C the same starting state B's round consumed from.
    resume_point = copy.deepcopy(get_rng().bit_generator.state)
    third_b = learner_b.fine_tune_round()
    get_rng().bit_generator.state = copy.deepcopy(resume_point)
    third_c = learner_c.fine_tune_round()
    assert third_b["mean_loss"] == third_c["mean_loss"]
    assert_states_equal(learner_b, learner_c)


def test_crash_before_any_checkpoint_resumes_from_scratch(initial_artifact,
                                                          tmp_path):
    set_seed(77)
    events = EventLog(capacity=1024)
    append_phase(events, PHASE_1)
    faulty = FaultyModel(load_artifact(initial_artifact),
                         FaultPlan(crash_steps={1}))
    learner = OnlineLearner(faulty, events,
                            config=make_config(tmp_path / "fresh"),
                            base_histories=BASE_HISTORIES)
    with pytest.raises(InjectedCrash):
        learner.fine_tune_round()
    # No checkpoint was ever written; a successor starts from round 0
    # and still sees every event (the ring kept them).
    successor = OnlineLearner(load_artifact(initial_artifact), events,
                              config=make_config(tmp_path / "fresh"),
                              base_histories=BASE_HISTORIES)
    assert successor.resume() is False
    summary = successor.fine_tune_round()
    assert summary["events"] == len(PHASE_1)
    assert summary["steps"] == 2
