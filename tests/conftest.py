"""Shared fixtures: a tiny synthetic dataset and fast training configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import split_leave_one_out
from repro.data.synthetic import SimulatorConfig, generate_dataset
from repro.train import TrainConfig
from repro.utils import set_seed


@pytest.fixture(autouse=True)
def _seeded():
    """Make every test deterministic by default."""
    set_seed(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but non-trivial dataset shared across the suite."""
    config = SimulatorConfig(
        name="tiny", domain="beauty", num_users=90, num_items=70,
        num_concepts=24, avg_length=8.0, max_length=25, concepts_per_item=4.0,
        true_lambda=2, intent_match_weight=8.0, popularity_weight=0.3,
        noise_scale=0.5, transition_prob=0.3, seed=7,
    )
    dataset = generate_dataset(config)
    assert dataset.num_users > 20, "tiny dataset collapsed under 5-core filtering"
    return dataset


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset):
    return split_leave_one_out(tiny_dataset.sequences)


@pytest.fixture()
def fast_train_config():
    """Two quick epochs without validation-driven early stopping."""
    return TrainConfig(epochs=2, batch_size=32, lr=3e-3, eval_every=10,
                       patience=0, seed=0)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
