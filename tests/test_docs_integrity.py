"""Documentation integrity: the docs must reference real code and files."""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


class TestFilesPresent:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGELOG.md", "LICENSE",
        "docs/api.md", "docs/datasets.md", "docs/reproduction-notes.md",
        "docs/paper-mapping.md", "docs/substrate.md", "docs/faq.md",
        "examples/README.md", "Makefile", "pyproject.toml",
    ])
    def test_exists_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), f"{name} missing"
        assert path.stat().st_size > 100, f"{name} suspiciously small"

    def test_examples_present(self):
        examples = sorted((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 4

    def test_benchmarks_cover_every_artifact(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        for artefact in ("table2", "table3", "table4", "table5", "table6",
                         "figure2", "figure3", "figure4"):
            assert any(artefact in name for name in benches), artefact


class TestReadmeReferences:
    def test_mentioned_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.findall(r"examples/(\w+\.py)", text):
            assert (ROOT / "examples" / match).exists(), match

    def test_mentioned_benchmarks_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.findall(r"`(test_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_quickstart_snippet_imports_resolve(self):
        """Every `from repro... import X` statement in README must resolve."""
        text = (ROOT / "README.md").read_text()
        statements = re.findall(
            r"from (repro[\w.]*) import (\([^)]*\)|[^\n]+)", text)
        assert statements, "README should contain import examples"
        for module_name, names in statements:
            module = importlib.import_module(module_name)
            for name in re.split(r"[,\s()]+", names.strip()):
                if name:
                    assert hasattr(module, name), f"{module_name}.{name}"


class TestPaperMappingReferences:
    def test_code_paths_resolve(self):
        """Dotted repro.* references in the mapping doc must import."""
        text = (ROOT / "docs" / "paper-mapping.md").read_text()
        seen = set()
        for dotted in re.findall(r"`(repro(?:\.\w+)+)", text):
            parts = dotted.split(".")
            # Find the longest importable module prefix, then getattr down.
            for split in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:split]))
                except ImportError:
                    continue
                remainder = parts[split:]
                try:
                    for name in remainder:
                        obj = getattr(obj, name)
                except AttributeError:
                    pytest.fail(f"dangling reference in paper-mapping.md: {dotted}")
                seen.add(dotted)
                break
            else:
                pytest.fail(f"unimportable reference: {dotted}")
        assert len(seen) > 20  # the mapping is substantial
