"""Documentation integrity: the docs must reference real code and files."""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]

DOC_FILES = sorted(
    path.relative_to(ROOT).as_posix()
    for path in list((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]
)

_FENCE = re.compile(r"```.*?```", re.DOTALL)


def strip_fences(text):
    """Remove fenced code blocks, returning (stripped_text, fence_bodies)."""
    fences = [m.group(0) for m in _FENCE.finditer(text)]
    return _FENCE.sub("", text), fences


def inline_spans(text):
    """Backticked inline code spans (fences already stripped), with any
    hard-wrapped whitespace collapsed."""
    return [" ".join(span.split()) for span in re.findall(r"`([^`]+)`", text)]


def resolve_dotted(dotted):
    """Import the longest module prefix of ``repro.a.b.c`` and getattr the
    rest; return False if nothing resolves."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        try:
            for name in parts[split:]:
                obj = getattr(obj, name)
        except AttributeError:
            return False
        return True
    return False


def makefile_targets():
    targets = set()
    for line in (ROOT / "Makefile").read_text().splitlines():
        match = re.match(r"^([A-Za-z][\w-]*):", line)
        if match:
            targets.add(match.group(1))
    return targets


class TestFilesPresent:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGELOG.md", "LICENSE",
        "docs/api.md", "docs/architecture.md", "docs/datasets.md",
        "docs/reproduction-notes.md", "docs/paper-mapping.md",
        "docs/substrate.md", "docs/faq.md", "docs/fault-tolerance.md",
        "docs/performance.md", "docs/observability.md", "docs/serving.md",
        "docs/parallelism.md", "docs/resilience.md",
        "docs/online-learning.md", "docs/training-objectives.md",
        "docs/graph-workloads.md",
        "examples/README.md", "Makefile", "pyproject.toml",
        ".github/workflows/ci.yml",
    ])
    def test_exists_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), f"{name} missing"
        assert path.stat().st_size > 100, f"{name} suspiciously small"

    def test_examples_present(self):
        examples = sorted((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 4

    def test_benchmarks_cover_every_artifact(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        for artefact in ("table2", "table3", "table4", "table5", "table6",
                         "figure2", "figure3", "figure4", "intents",
                         "graphs"):
            assert any(artefact in name for name in benches), artefact


class TestReadmeReferences:
    def test_mentioned_examples_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.findall(r"examples/(\w+\.py)", text):
            assert (ROOT / "examples" / match).exists(), match

    def test_mentioned_benchmarks_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.findall(r"`(test_\w+\.py)`", text):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_quickstart_snippet_imports_resolve(self):
        """Every `from repro... import X` statement in README must resolve."""
        text = (ROOT / "README.md").read_text()
        statements = re.findall(
            r"from (repro[\w.]*) import (\([^)]*\)|[^\n]+)", text)
        assert statements, "README should contain import examples"
        for module_name, names in statements:
            module = importlib.import_module(module_name)
            for name in re.split(r"[,\s()]+", names.strip()):
                if name:
                    assert hasattr(module, name), f"{module_name}.{name}"


class TestAllDocsReferences:
    """Every docs/*.md file and the README must only reference code symbols,
    make targets, and repo paths that actually exist."""

    @pytest.mark.parametrize("doc", DOC_FILES)
    def test_dotted_symbols_resolve(self, doc):
        text, _ = strip_fences((ROOT / doc).read_text())
        dangling = sorted(
            dotted for dotted in set(re.findall(r"`(repro(?:\.\w+)+)", text))
            if not resolve_dotted(dotted))
        assert not dangling, f"{doc} references unresolvable: {dangling}"

    @pytest.mark.parametrize("doc", DOC_FILES)
    def test_make_targets_exist(self, doc):
        text, fences = strip_fences((ROOT / doc).read_text())
        targets = makefile_targets()
        mentioned = set()
        for span in inline_spans(text):
            if span.startswith("make ") and len(span.split()) >= 2:
                mentioned.add(span.split()[1])
        for fence in fences:
            for line in fence.splitlines():
                words = line.strip().split()
                if len(words) >= 2 and words[0] == "make":
                    mentioned.add(words[1])
        missing = sorted(m for m in mentioned if m not in targets)
        assert not missing, f"{doc} mentions unknown make targets: {missing}"

    @pytest.mark.parametrize("doc", DOC_FILES)
    def test_repo_relative_paths_exist(self, doc):
        """A backticked span that is a path under a real top-level directory
        must point at an existing file or directory.  Spans whose first
        segment is not a tracked top-level directory (output locations such
        as ``runs/...``, ratios such as ``composed/fused``) are skipped."""
        text, _ = strip_fences((ROOT / doc).read_text())
        broken = []
        for span in inline_spans(text):
            if not re.fullmatch(r"[\w.-]+(/[\w.-]+)+/?", span):
                continue
            first = span.split("/", 1)[0]
            if (ROOT / span).exists():
                continue
            if (ROOT / first).is_dir():
                broken.append(span)
        assert not broken, f"{doc} references missing paths: {broken}"


class TestPaperMappingReferences:
    def test_code_paths_resolve(self):
        """Dotted repro.* references in the mapping doc must import."""
        text = (ROOT / "docs" / "paper-mapping.md").read_text()
        seen = set()
        for dotted in set(re.findall(r"`(repro(?:\.\w+)+)", text)):
            assert resolve_dotted(dotted), (
                f"dangling reference in paper-mapping.md: {dotted}")
            seen.add(dotted)
        assert len(seen) > 20  # the mapping is substantial
