"""End-to-end integration: data -> model -> training -> evaluation -> explanation.

These tests exercise the same paths as the examples and benchmarks, at
miniature scale.
"""

import numpy as np

from repro import (
    ISRec,
    ISRecConfig,
    IntentTracer,
    RankingEvaluator,
    TrainConfig,
    load_dataset,
    split_leave_one_out,
)
from repro.models import PopRec, SASRec
from repro.utils import set_seed


class TestFullPipeline:
    def test_isrec_beats_popularity(self):
        """The headline claim at smoke scale: intent modelling beats PopRec."""
        set_seed(0)
        dataset = load_dataset("epinions", scale=0.4)
        split = split_leave_one_out(dataset.sequences)
        evaluator = RankingEvaluator(split, dataset.num_items, num_negatives=40,
                                     seed=0, popularity=dataset.item_popularity())
        config = TrainConfig(epochs=12, eval_every=4, patience=2, seed=0)

        pop = PopRec(max_len=10)
        pop.fit(dataset, split)
        pop_report = evaluator.evaluate(pop)

        model = ISRec.from_dataset(dataset, max_len=10, config=ISRecConfig(dim=16))
        model.fit(dataset, split, config)
        isrec_report = evaluator.evaluate(model)

        assert isrec_report.hr10 > pop_report.hr10
        assert isrec_report.mrr > pop_report.mrr

    def test_explanations_from_trained_model(self):
        set_seed(0)
        dataset = load_dataset("epinions", scale=0.4)
        split = split_leave_one_out(dataset.sequences)
        model = ISRec.from_dataset(dataset, max_len=10, config=ISRecConfig(dim=16))
        model.fit(dataset, split, TrainConfig(epochs=3, eval_every=10, patience=0))
        trace = IntentTracer(model, dataset).trace(user=0)
        assert trace.steps
        rendered = trace.render()
        assert f"user {trace.user}" in rendered

    def test_quick_isrec_helper(self):
        from repro import quick_isrec

        model, report = quick_isrec("epinions", epochs=1, max_len=8)
        assert 0.0 <= report.hr10 <= 1.0
        assert model.max_len == 8

    def test_state_dict_roundtrip_preserves_scores(self):
        set_seed(0)
        dataset = load_dataset("epinions", scale=0.4)
        split = split_leave_one_out(dataset.sequences)
        model = ISRec.from_dataset(dataset, max_len=10, config=ISRecConfig(dim=16))
        model.fit(dataset, split, TrainConfig(epochs=2, eval_every=10, patience=0))

        set_seed(0)
        clone = ISRec.from_dataset(dataset, max_len=10, config=ISRecConfig(dim=16))
        clone.load_state_dict(model.state_dict())
        clone.eval()
        model.eval()

        inputs = np.zeros((2, 10), dtype=np.int64)
        inputs[:, -3:] = [[1, 2, 3], [4, 5, 6]]
        candidates = np.tile(np.arange(1, 8), (2, 1))
        users = np.arange(2)
        np.testing.assert_allclose(model.score(users, inputs, candidates),
                                   clone.score(users, inputs, candidates),
                                   rtol=1e-5)

    def test_sasrec_and_isrec_share_protocol(self):
        """Both models are interchangeable under the evaluator protocol."""
        set_seed(0)
        dataset = load_dataset("epinions", scale=0.4)
        split = split_leave_one_out(dataset.sequences)
        evaluator = RankingEvaluator(split, dataset.num_items, num_negatives=30,
                                     seed=0)
        config = TrainConfig(epochs=1, eval_every=10, patience=0)
        for model in (SASRec(dataset.num_items, dim=16, max_len=10),
                      ISRec.from_dataset(dataset, max_len=10,
                                         config=ISRecConfig(dim=16))):
            model.fit(dataset, split, config)
            report = evaluator.evaluate(model)
            assert np.isfinite(report.mrr)
