"""Flat parameter/gradient buffers: layouts, shared memory, reduction."""

import numpy as np
import pytest

from repro.parallel.flat import FlatLayout, SharedFlatBuffer, weighted_average
from repro.tensor.tensor import Tensor


def make_parameters():
    rng = np.random.default_rng(3)
    return [
        Tensor(rng.standard_normal((4, 3)).astype(np.float32), requires_grad=True),
        Tensor(rng.standard_normal(5).astype(np.float32), requires_grad=True),
        Tensor(rng.standard_normal((2, 2, 2)).astype(np.float32), requires_grad=True),
    ]


class TestFlatLayout:
    def test_size_and_offsets(self):
        parameters = make_parameters()
        layout = FlatLayout(parameters)
        assert layout.size == 12 + 5 + 8
        assert len(layout) == 3
        regions = [region for _i, region, _s, _d in layout.slices()]
        assert [r.start for r in regions] == [0, 12, 17]
        assert [r.stop for r in regions] == [12, 17, 25]

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            FlatLayout([])

    def test_param_round_trip_is_exact(self):
        parameters = make_parameters()
        layout = FlatLayout(parameters)
        flat = np.zeros(layout.size, dtype=np.float64)
        layout.write_params(parameters, flat)

        originals = [p.data.copy() for p in parameters]
        for p in parameters:
            p.data[...] = 0.0
        layout.read_params(flat, parameters)
        for parameter, original in zip(parameters, originals):
            # float32 -> float64 -> float32 must be bitwise lossless.
            np.testing.assert_array_equal(parameter.data, original)
            assert parameter.data.dtype == np.float32

    def test_grad_round_trip_preserves_none(self):
        parameters = make_parameters()
        layout = FlatLayout(parameters)
        rng = np.random.default_rng(4)
        parameters[0].grad = rng.standard_normal((4, 3)).astype(np.float32)
        parameters[1].grad = None
        parameters[2].grad = rng.standard_normal((2, 2, 2)).astype(np.float32)

        flat = np.zeros(layout.size, dtype=np.float64)
        present = layout.write_grads(parameters, flat)
        assert present == [True, False, True]
        assert np.all(flat[12:17] == 0.0)

        targets = make_parameters()
        layout.assign_grads(flat, targets, present)
        np.testing.assert_array_equal(targets[0].grad, parameters[0].grad)
        assert targets[1].grad is None
        np.testing.assert_array_equal(targets[2].grad, parameters[2].grad)
        assert targets[0].grad.dtype == np.float32


class TestSharedFlatBuffer:
    def test_lifecycle(self):
        buffer = SharedFlatBuffer((3, 7))
        assert buffer.array.shape == (3, 7)
        assert buffer.array.dtype == np.float64
        assert np.all(buffer.array == 0.0)
        buffer.array[1, 2] = 5.5
        assert buffer.array[1, 2] == 5.5
        buffer.close()
        buffer.unlink()
        buffer.unlink()  # idempotent

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            SharedFlatBuffer((0,))


class TestWeightedAverage:
    def test_matches_full_batch_mean(self):
        # Two shards of a mean-reduced loss: shard gradients g_i with
        # token counts w_i must reduce to the full-batch gradient.
        rng = np.random.default_rng(5)
        per_token = rng.standard_normal((7, 6))
        weights = np.array([3.0, 4.0])
        shard_grads = np.stack([per_token[:3].mean(axis=0),
                                per_token[3:].mean(axis=0)])
        reduced = weighted_average(shard_grads, weights)
        np.testing.assert_allclose(reduced, per_token.mean(axis=0), atol=1e-12)

    def test_single_worker_is_identity(self):
        grads = np.random.default_rng(6).standard_normal((1, 9))
        reduced = weighted_average(grads, np.array([13.0]))
        np.testing.assert_array_equal(reduced, grads[0])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_average(np.zeros((2, 3)), np.zeros(2))
