"""PrefetchLoader: ordering, error propagation, lifecycle."""

import time

import pytest

from repro.parallel.prefetch import PrefetchLoader


def slow_source(n, delay=0.0):
    for value in range(n):
        if delay:
            time.sleep(delay)
        yield value


class TestPrefetchLoader:
    def test_preserves_order_and_exhausts(self):
        with PrefetchLoader(slow_source(20), capacity=4) as loader:
            assert list(loader) == list(range(20))

    def test_counts_hits_and_misses(self):
        with PrefetchLoader(slow_source(10), capacity=4) as loader:
            total = sum(1 for _ in loader)
        assert total == 10
        # 10 batch fetches + the final sentinel fetch are all counted.
        assert loader.hits + loader.misses == 11
        assert 0.0 <= loader.hit_rate <= 1.0

    def test_slow_producer_counts_misses(self):
        with PrefetchLoader(slow_source(4, delay=0.02), capacity=2) as loader:
            list(loader)
        assert loader.misses >= 1

    def test_producer_exception_reaches_consumer(self):
        def broken():
            yield 1
            raise RuntimeError("bad batch")

        loader = PrefetchLoader(broken(), capacity=2)
        consumed = []
        with pytest.raises(RuntimeError, match="bad batch"):
            for item in loader:
                consumed.append(item)
        assert consumed == [1]
        loader.close()

    def test_close_mid_stream_does_not_hang(self):
        loader = PrefetchLoader(slow_source(10_000), capacity=2)
        assert next(iter(loader)) == 0
        loader.close()
        loader.close()  # idempotent

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PrefetchLoader(iter([]), capacity=0)
