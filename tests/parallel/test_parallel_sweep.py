"""Parallel sweep executor: serial parity, ledger reuse, kill/resume."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.common import SweepState, fast_config
from repro.experiments.table2 import run_table2
from repro.parallel.sweep import SweepCell, run_cells

SCALE = 0.12
MODELS = ["PopRec", "BPR-MF", "GRU4Rec"]


def make_cells(config, models=MODELS, profile="epinions"):
    return [SweepCell(key=f"{profile}/{name}", model=name, profile=profile,
                      scale=SCALE, config=config) for name in models]


@pytest.fixture()
def config():
    return fast_config(dim=16, epochs=2, num_negatives=20)


class TestRunCells:
    def test_parallel_matches_serial_exactly(self, config):
        serial = run_cells(make_cells(config), jobs=1)
        parallel = run_cells(make_cells(config), jobs=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert (serial[key].report.as_dict()
                    == parallel[key].report.as_dict())

    def test_completed_cells_come_from_the_ledger(self, config, tmp_path):
        ledger = tmp_path / "sweep.json"
        first = run_cells(make_cells(config), jobs=2, sweep=SweepState(ledger))
        second = run_cells(make_cells(config), jobs=2, sweep=SweepState(ledger))
        for key, run in second.items():
            assert run.extras.get("resumed_from_sweep") is True
            assert run.seconds == first[key].seconds
            assert run.report.as_dict() == first[key].report.as_dict()

    def test_progress_covers_every_cell(self, config):
        seen = []
        run_cells(make_cells(config), jobs=2,
                  progress=lambda cell, run: seen.append(cell.key))
        assert sorted(seen) == sorted(f"epinions/{m}" for m in MODELS)

    def test_duplicate_keys_rejected(self, config):
        cells = make_cells(config, models=["PopRec", "PopRec"])
        with pytest.raises(ValueError, match="duplicate"):
            run_cells(cells, jobs=2)

    def test_invalid_jobs_rejected(self, config):
        with pytest.raises(ValueError):
            run_cells(make_cells(config), jobs=0)


class TestRunnerJobs:
    def test_table2_jobs_matches_serial(self, config):
        serial = run_table2(profiles=["epinions"], models=MODELS,
                            config=config, scale=SCALE, jobs=1)
        parallel = run_table2(profiles=["epinions"], models=MODELS,
                              config=config, scale=SCALE, jobs=3)
        for name in MODELS:
            a = serial.results["epinions"][name]
            b = parallel.results["epinions"][name]
            np.testing.assert_array_equal(
                list(a.as_dict().values()), list(b.as_dict().values()))


KILL_SCRIPT = """
from repro.experiments.common import SweepState, fast_config
from repro.parallel.sweep import SweepCell, run_cells

config = fast_config(dim=16, epochs=40, eval_every=50, patience=10,
                     num_negatives=20)
models = ["PopRec", "SASRec", "GRU4Rec", "Caser"]
cells = [SweepCell(key=f"epinions/{name}", model=name, profile="epinions",
                   scale=@SCALE@, config=config) for name in models]
run_cells(cells, jobs=2, sweep=SweepState(@LEDGER@))
print("SWEEP-COMPLETE")
"""


@pytest.mark.faults
class TestKillResume:
    def test_killed_parallel_sweep_resumes_from_ledger(self, config, tmp_path):
        """SIGKILL a 2-job sweep mid-flight; the restart must serve every
        ledgered cell from the ledger instead of recomputing it."""
        ledger = tmp_path / "sweep.json"
        script = (KILL_SCRIPT.replace("@SCALE@", repr(SCALE))
                  .replace("@LEDGER@", repr(str(ledger))))
        env = dict(os.environ,
                   PYTHONPATH=str(Path(__file__).resolve().parents[2] / "src"))
        process = subprocess.Popen([sys.executable, "-c", script], env=env,
                                   stdout=subprocess.PIPE,
                                   stderr=subprocess.STDOUT)
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if process.poll() is not None:
                    pytest.fail("sweep finished before it could be killed: "
                                + process.stdout.read().decode()[-2000:])
                if ledger.exists():
                    try:
                        completed = json.loads(ledger.read_text())["completed"]
                    except (json.JSONDecodeError, KeyError):
                        completed = {}
                    if completed:
                        break
                time.sleep(0.05)
            else:
                pytest.fail("ledger never gained a completed run")
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        survivors = set(json.loads(ledger.read_text())["completed"])
        assert survivors, "kill landed before any cell completed"

        # Restart the same grid (fast epochs now) against the same ledger.
        cells = make_cells(config, models=["PopRec", "SASRec", "GRU4Rec",
                                           "Caser"])
        results = run_cells(cells, jobs=2, sweep=SweepState(ledger))
        assert set(results) == {f"epinions/{m}"
                                for m in ("PopRec", "SASRec", "GRU4Rec",
                                          "Caser")}
        for key in survivors:
            assert results[key].extras.get("resumed_from_sweep") is True
        # And everything is in the ledger now.
        final = set(json.loads(ledger.read_text())["completed"])
        assert final == set(results)
