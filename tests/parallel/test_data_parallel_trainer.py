"""DataParallelTrainer: exact equivalence, resume, dispatch, config.

The headline regression here pins the ISSUE acceptance criterion: a
4-worker data-parallel run must walk the same loss curve as the
single-process same-seed run to within 1e-6 per epoch.  The workload uses
``SASRec(dropout=0.0)`` — a deterministic forward — because equivalence
is only exact for deterministic-forward models (stochastic layers draw
worker-local noise; see ``docs/parallelism.md``).
"""

import numpy as np
import pytest

from repro.models.sasrec import SASRec
from repro.parallel.trainer import DataParallelTrainer
from repro.parallel.worker import WorkerPool, shard_stream_seed
from repro.train.checkpoint import CheckpointManager
from repro.train.trainer import TrainConfig, Trainer
from repro.utils.seeding import temp_seed

NUM_ITEMS = 50


def build_model(batch_size=8):
    """Identically-initialised deterministic-forward workload."""
    with temp_seed(0):
        model = SASRec(num_items=NUM_ITEMS, dim=16, max_len=8,
                       num_layers=1, num_heads=2, dropout=0.0)
    rng = np.random.default_rng(7)
    model._train_sequences = [rng.integers(1, NUM_ITEMS + 1, size=int(n))
                              for n in rng.integers(4, 13, size=24)]
    model._train_batch_size = batch_size
    return model


def train(workers, epochs=2, prefetch=0, checkpoint_dir=None, resume=None):
    model = build_model()
    config = TrainConfig(epochs=epochs, batch_size=8, eval_every=100,
                         patience=0, seed=0, num_workers=workers,
                         prefetch=prefetch,
                         checkpoint_dir=checkpoint_dir)
    if workers > 1:
        trainer = DataParallelTrainer(model, config)
    else:
        trainer = Trainer(model, config)
    with temp_seed(0):
        history = trainer.fit(resume_from=resume)
    return model, history


class TestLossCurveEquivalence:
    def test_four_workers_match_single_process(self):
        _, solo = train(workers=1, epochs=2)
        _, parallel = train(workers=4, epochs=2)
        assert len(parallel.losses) == len(solo.losses) == 2
        np.testing.assert_allclose(parallel.losses, solo.losses, atol=1e-6)

    def test_two_workers_match_single_process(self):
        _, solo = train(workers=1, epochs=2)
        _, parallel = train(workers=2, epochs=2)
        np.testing.assert_allclose(parallel.losses, solo.losses, atol=1e-6)

    def test_one_worker_is_bitwise_identical(self):
        # With a single worker the weighted average is g*w/w in float64,
        # which is exact — the curve must match to the last bit.
        solo_model, solo = train(workers=1, epochs=2)
        # Route the second run through the parallel trainer explicitly
        # (TrainConfig(num_workers=1) alone would dispatch to Trainer).
        model = build_model()
        config = TrainConfig(epochs=2, batch_size=8, eval_every=100,
                             patience=0, seed=0)
        with temp_seed(0):
            history = DataParallelTrainer(model, config).fit()
        assert history.losses == solo.losses
        for a, b in zip(solo_model.parameters(), model.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_prefetch_does_not_change_the_curve(self):
        _, plain = train(workers=1, epochs=2)
        _, prefetched = train(workers=1, epochs=2, prefetch=3)
        assert prefetched.losses == plain.losses
        _, dp_prefetched = train(workers=2, epochs=2, prefetch=2)
        np.testing.assert_allclose(dp_prefetched.losses, plain.losses,
                                   atol=1e-6)


class TestCheckpointInterop:
    def test_parallel_checkpoint_records_world_size(self, tmp_path):
        train(workers=2, epochs=2, checkpoint_dir=str(tmp_path))
        state, _path = CheckpointManager(tmp_path).load_latest()
        assert state.extras["world_size"] == 2
        assert state.epoch == 2

    def test_single_process_resumes_parallel_checkpoint(self, tmp_path):
        # 2 parallel epochs + 1 single-process epoch == 3 single epochs,
        # because the parent adopts the workers' post-epoch RNG state.
        _, full = train(workers=1, epochs=3)
        train(workers=2, epochs=2, checkpoint_dir=str(tmp_path))
        _, resumed = train(workers=1, epochs=3,
                           checkpoint_dir=str(tmp_path), resume=True)
        assert len(resumed.losses) == 3
        np.testing.assert_allclose(resumed.losses, full.losses, atol=1e-6)

    def test_parallel_resumes_parallel_checkpoint(self, tmp_path):
        _, full = train(workers=2, epochs=3)
        train(workers=2, epochs=2, checkpoint_dir=str(tmp_path))
        _, resumed = train(workers=2, epochs=3,
                           checkpoint_dir=str(tmp_path), resume=True)
        np.testing.assert_allclose(resumed.losses, full.losses, atol=1e-6)


class TestDispatchAndConfig:
    def test_model_fit_dispatches_to_parallel_trainer(self, tiny_dataset,
                                                      tiny_split):
        with temp_seed(0):
            model = SASRec(num_items=tiny_dataset.num_items, dim=16,
                           max_len=10, num_layers=1, num_heads=2, dropout=0.0)
        config = TrainConfig(epochs=1, batch_size=32, eval_every=10,
                             patience=0, seed=0, num_workers=2)
        history = model.fit(tiny_dataset, tiny_split, config)
        assert history.epochs_run == 1
        assert np.isfinite(history.losses[0])

    def test_num_workers_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(num_workers=0)
        with pytest.raises(ValueError):
            TrainConfig(prefetch=-1)
        with pytest.raises(ValueError):
            WorkerPool(build_model(), world=0, seed=0)

    def test_shard_stream_seed_is_stable_and_distinct(self):
        assert shard_stream_seed(0, 1, 2) == shard_stream_seed(0, 1, 2)
        seeds = {shard_stream_seed(0, rank, epoch)
                 for rank in range(4) for epoch in range(3)}
        assert len(seeds) == 12
