"""bench_parallel smoke: the harness runs and its document is coherent."""

import json

from repro.parallel.bench import (
    SMOKE_SHAPES,
    cpu_budget,
    format_summary,
    run_parallel_bench,
)
from repro.utils.bench import write_bench


class TestParallelBench:
    def test_smoke_document(self, tmp_path):
        results = run_parallel_bench(preset="smoke", workers=[1, 2])
        assert results["schema"] == "bench_parallel/v1"
        assert results["shapes"] == SMOKE_SHAPES
        assert results["single_process"]["wall_time_s"] > 0
        assert results["single_process_prefetch"]["prefetch"] == 2
        assert set(results["data_parallel"]) == {"1", "2"}
        for run in results["data_parallel"].values():
            assert run["speedup_vs_single"] > 0
            # Deterministic-forward workload: every configuration must land
            # on the single-process loss curve.
            assert run["loss_matches_single"] is True
        assert "cpu_count" in results["environment"]

        out = tmp_path / "bench.json"
        write_bench(results, str(out))
        assert json.loads(out.read_text())["schema"] == "bench_parallel/v1"
        summary = format_summary(results)
        assert "data-parallel x2" in summary

    def test_cpu_budget_shape(self):
        budget = cpu_budget()
        assert budget["cpu_count"] >= 1
