"""Extensions beyond the core paper: checkpointing, learned graph,
temperature annealing, analysis diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    concept_activation_distribution,
    concept_activation_entropy,
    intent_next_item_hit_rate,
    rank_distribution,
    rank_percentiles,
    transition_smoothness,
)
from repro.core import ISRec, ISRecConfig
from repro.eval import RankingEvaluator
from repro.nn.graph import LearnedAdjacencyGCN
from repro.tensor import Tensor
from repro.train import TrainConfig
from repro.utils import set_seed
from repro.utils.serialization import load_checkpoint, save_checkpoint


@pytest.fixture()
def small_isrec(tiny_dataset):
    set_seed(0)
    return ISRec.from_dataset(tiny_dataset, max_len=8, config=ISRecConfig(dim=16))


class TestCheckpointing:
    def test_roundtrip(self, small_isrec, tiny_dataset, tmp_path):
        path = save_checkpoint(small_isrec, tmp_path / "model")
        assert path.suffix == ".npz"

        set_seed(1)  # different init
        clone = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        meta = load_checkpoint(clone, path)
        assert meta["model_class"] == "ISRec"
        for (_, a), (_, b) in zip(small_isrec.named_parameters(),
                                  clone.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_class_mismatch_rejected(self, small_isrec, tiny_dataset, tmp_path):
        from repro.models import SASRec

        path = save_checkpoint(small_isrec, tmp_path / "model.npz")
        other = SASRec(tiny_dataset.num_items, dim=16, max_len=8)
        with pytest.raises(TypeError):
            load_checkpoint(other, path)

    def test_metadata_contents(self, small_isrec, tmp_path):
        path = save_checkpoint(small_isrec, tmp_path / "ckpt.npz")
        meta = load_checkpoint(small_isrec, path)
        assert meta["num_parameters"] == small_isrec.num_parameters()
        assert sorted(meta["keys"]) == sorted(
            name for name, _ in small_isrec.named_parameters())


class TestLearnedGraph:
    def test_layer_shapes(self, rng):
        gcn = LearnedAdjacencyGCN(6, 4, num_layers=2)
        out = gcn(Tensor(rng.normal(size=(2, 6, 4)).astype(np.float32)))
        assert out.shape == (2, 6, 4)

    def test_adjacency_properties(self):
        prior = np.zeros((5, 5), dtype=np.float32)
        prior[0, 1] = prior[1, 0] = 1.0
        gcn = LearnedAdjacencyGCN(5, 4, init_adjacency=prior)
        dense = gcn.adjacency().data
        np.testing.assert_allclose(dense, dense.T, atol=1e-6)
        np.testing.assert_allclose(np.diag(dense), 0.0, atol=1e-6)
        assert dense[0, 1] > 0.7      # prior edge starts strong
        assert dense[2, 3] < 0.3      # prior non-edge starts weak

    def test_prior_shape_validated(self):
        with pytest.raises(ValueError):
            LearnedAdjacencyGCN(5, 4, init_adjacency=np.zeros((4, 4)))

    def test_logits_receive_gradient(self, rng):
        gcn = LearnedAdjacencyGCN(6, 4)
        out = gcn(Tensor(rng.normal(size=(6, 4)).astype(np.float32)))
        out.sum().backward()
        assert gcn.edge_logits.grad is not None
        assert np.abs(gcn.edge_logits.grad).sum() > 0

    def test_isrec_learned_graph_trains(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = ISRec.from_dataset(
            tiny_dataset, max_len=8,
            config=ISRecConfig(dim=16, graph_mode="learned"))
        history = model.fit(tiny_dataset, tiny_split,
                            TrainConfig(epochs=3, eval_every=10, patience=0))
        assert history.losses[-1] < history.losses[0]

    def test_invalid_graph_mode(self):
        with pytest.raises(ValueError):
            ISRecConfig(graph_mode="frozen")


class TestTemperatureAnnealing:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ISRecConfig(tau_anneal=0.0)
        with pytest.raises(ValueError):
            ISRecConfig(tau_anneal=1.5)

    def test_tau_decreases_during_training(self, tiny_dataset, tiny_split):
        set_seed(0)
        config = ISRecConfig(dim=16, tau=1.0, tau_anneal=0.5, tau_min=0.2)
        model = ISRec.from_dataset(tiny_dataset, max_len=8, config=config)
        model.fit(tiny_dataset, tiny_split,
                  TrainConfig(epochs=4, eval_every=10, patience=0))
        assert model.extractor.tau == pytest.approx(0.2)  # floored at tau_min
        assert model.transition.tau == pytest.approx(0.2)

    def test_annealing_disabled_by_default(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        model.fit(tiny_dataset, tiny_split,
                  TrainConfig(epochs=2, eval_every=10, patience=0))
        assert model.extractor.tau == pytest.approx(1.0)


class TestIntentDiagnostics:
    @pytest.fixture()
    def trained(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        model.fit(tiny_dataset, tiny_split,
                  TrainConfig(epochs=3, eval_every=10, patience=0))
        return model

    def test_activation_distribution_is_probability(self, trained, tiny_dataset):
        distribution = concept_activation_distribution(trained, tiny_dataset,
                                                       users=list(range(20)))
        assert distribution.shape == (tiny_dataset.num_concepts,)
        assert distribution.sum() == pytest.approx(1.0)
        assert (distribution >= 0).all()

    def test_entropy_bounds(self, trained, tiny_dataset):
        entropy = concept_activation_entropy(trained, tiny_dataset,
                                             users=list(range(20)))
        assert 0.0 <= entropy <= 1.0

    def test_smoothness_bounds(self, trained, tiny_dataset):
        smoothness = transition_smoothness(trained, tiny_dataset,
                                           users=list(range(20)))
        assert 0.0 <= smoothness <= 1.0

    def test_hit_rate_bounds(self, trained, tiny_dataset):
        rate = intent_next_item_hit_rate(trained, tiny_dataset,
                                         users=list(range(20)))
        assert 0.0 <= rate <= 1.0

    def test_diagnostics_reject_intentless_models(self, tiny_dataset):
        from repro.core import build_variant

        plain = build_variant("w/o GNN&Intent", tiny_dataset, max_len=8,
                              base_config=ISRecConfig(dim=16))
        with pytest.raises(ValueError):
            concept_activation_entropy(plain, tiny_dataset, users=[0])


class TestRankDiagnostics:
    def test_rank_distribution_and_percentiles(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        model.fit(tiny_dataset, tiny_split,
                  TrainConfig(epochs=2, eval_every=10, patience=0))
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20, seed=0)
        ranks = rank_distribution(model, evaluator)
        assert ranks.shape == (tiny_split.num_users,)
        assert ranks.min() >= 1 and ranks.max() <= 21
        percentiles = rank_percentiles(ranks)
        assert percentiles[10] <= percentiles[50] <= percentiles[90]
