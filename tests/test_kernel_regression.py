"""Tier-1 guard: the fused kernel path must not be slower than the composed
reference on the train-step microbench.

Runs the same harness as ``make bench-kernels`` on miniature shapes with a
generous 1.0x threshold (fused is typically 1.5-2x faster even at smoke
shapes, so best-of-5 timing keeps CI noise from ever flaking this)."""

from repro.utils import bench


def test_fused_train_step_not_slower_than_composed():
    result = bench.bench_train_step(bench.SMOKE_SHAPES, repeats=5, warmup=2)
    composed = result["composed"]["wall_time_s"]
    fused_time = result["fused"]["wall_time_s"]
    assert fused_time <= composed * 1.0, (
        f"fused train step regressed: {fused_time * 1e3:.2f} ms vs composed "
        f"{composed * 1e3:.2f} ms"
    )
    # Fusing exists to cut temporaries: the fused step must allocate fewer.
    assert result["fused"]["tensor_allocs"] < result["composed"]["tensor_allocs"]


def test_bench_results_reproducible_structure():
    result = bench.bench_train_step(bench.SMOKE_SHAPES, repeats=1, warmup=1)
    assert set(result) == {"composed", "fused", "speedup", "alloc_ratio"}
    for path in ("composed", "fused"):
        assert result[path]["wall_time_s"] > 0
        assert result[path]["tensor_allocs"] > 0
