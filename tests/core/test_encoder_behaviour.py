"""Behavioural properties of the intent-aware encoder and extraction chain."""

import numpy as np
import pytest

from repro.core import ISRec, ISRecConfig
from repro.data.batching import pad_left
from repro.tensor.tensor import no_grad
from repro.utils import set_seed


class TestConceptInfluence:
    def test_concept_matrix_changes_encoding(self, tiny_dataset):
        """Items with concepts encode differently than without (Eq. 1)."""
        set_seed(0)
        with_concepts = ISRec.from_dataset(tiny_dataset, max_len=8,
                                           config=ISRecConfig(dim=16))
        set_seed(0)
        stripped = ISRec(tiny_dataset.num_items,
                         np.zeros_like(tiny_dataset.item_concepts),
                         tiny_dataset.concept_space.adjacency,
                         max_len=8, config=ISRecConfig(dim=16))
        with_concepts.eval()
        stripped.eval()
        inputs = pad_left([tiny_dataset.sequences[0]], 8)
        a = with_concepts.encoder(inputs).data
        b = stripped.encoder(inputs).data
        assert not np.allclose(a, b, atol=1e-4)

    def test_concept_identical_items_differ_only_by_item_embedding(self, tiny_dataset):
        """Eq. (1): for two items with identical concepts, the encoder input
        embeddings differ exactly by their item-embedding rows."""
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        model.eval()
        concepts = tiny_dataset.item_concepts
        match = None
        for a in range(1, tiny_dataset.num_items + 1):
            for b in range(a + 1, tiny_dataset.num_items + 1):
                if np.array_equal(concepts[a], concepts[b]) and concepts[a].sum() > 0:
                    match = (a, b)
                    break
            if match:
                break
        if match is None:
            pytest.skip("tiny world has no concept-identical item pair")
        a, b = match
        with no_grad():
            embed_a = model.encoder.embed(pad_left([np.array([a])], 8)).data[0, -1]
            embed_b = model.encoder.embed(pad_left([np.array([b])], 8)).data[0, -1]
        expected = (model.item_embedding.weight.data[a]
                    - model.item_embedding.weight.data[b])
        np.testing.assert_allclose(embed_a - embed_b, expected, atol=1e-5)


class TestIntentPipelineConsistency:
    def test_next_intention_constant_lambda_over_time(self, tiny_dataset):
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        model.eval()
        inputs = pad_left([tiny_dataset.sequences[0]], 8)
        detail = model.forward_detailed(inputs)
        lam = min(model.config.num_intents, tiny_dataset.num_concepts)
        np.testing.assert_array_equal(
            detail["next_intention"].data.sum(axis=-1), lam)
        np.testing.assert_array_equal(
            detail["intention"].data.sum(axis=-1), lam)

    def test_training_mode_stochastic_eval_deterministic(self, tiny_dataset):
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16, dropout=0.0))
        inputs = pad_left([tiny_dataset.sequences[0]], 8)
        model.train()
        a = model.forward_detailed(inputs)["intention"].data
        b = model.forward_detailed(inputs)["intention"].data
        assert not np.array_equal(a, b)  # Gumbel noise active
        model.eval()
        c = model.forward_detailed(inputs)["intention"].data
        d = model.forward_detailed(inputs)["intention"].data
        np.testing.assert_array_equal(c, d)

    def test_gradient_reaches_every_module(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        model._train_sequences = tiny_split.train_sequences()
        batch = next(iter(model.training_batches(np.random.default_rng(0))))
        model.training_loss(batch).backward()
        grads = {name: param.grad for name, param in model.named_parameters()}
        for prefix in ("encoder.item_embedding", "encoder.concept_embedding",
                       "transition.feature_bank", "transition.gcn",
                       "decoder.decoder_bank"):
            touched = [name for name in grads if name.startswith(prefix)]
            assert touched, f"no parameters under {prefix}"
            assert any(grads[name] is not None and np.abs(grads[name]).sum() > 0
                       for name in touched), f"no gradient reached {prefix}"
