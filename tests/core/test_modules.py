"""Unit tests for ISRec's four modules (encoder, extraction, transition, decoder)."""

import numpy as np
import pytest

from repro.core.encoder import IntentAwareEncoder
from repro.core.intent_decoder import IntentDecoder
from repro.core.intent_extraction import IntentExtractor
from repro.core.intent_transition import StructuredIntentTransition
from repro.nn.module import Parameter
from repro.tensor import Tensor
from repro.utils import set_seed

NUM_ITEMS = 30
NUM_CONCEPTS = 10
DIM = 16
INTENT_DIM = 4
MAX_LEN = 8


@pytest.fixture()
def item_concepts(rng):
    matrix = np.zeros((NUM_ITEMS + 1, NUM_CONCEPTS), dtype=np.float32)
    for item in range(1, NUM_ITEMS + 1):
        chosen = rng.choice(NUM_CONCEPTS, size=3, replace=False)
        matrix[item, chosen] = 1.0
    return matrix


@pytest.fixture()
def adjacency(rng):
    a = (rng.random((NUM_CONCEPTS, NUM_CONCEPTS)) < 0.3).astype(np.float32)
    a = np.maximum(a, a.T)
    np.fill_diagonal(a, 0)
    return a


class TestEncoder:
    def test_embedding_sums_concepts(self, item_concepts):
        set_seed(0)
        encoder = IntentAwareEncoder(NUM_ITEMS, item_concepts, DIM, MAX_LEN)
        inputs = np.array([[0] * (MAX_LEN - 1) + [3]])
        embedded = encoder.embed(inputs).data[0, -1]
        expected = (encoder.item_embedding.weight.data[3]
                    + item_concepts[3] @ encoder.concept_embedding.data
                    + encoder.position_embedding.data[-1])
        np.testing.assert_allclose(embedded, expected, rtol=1e-5)

    def test_forward_shape(self, item_concepts):
        encoder = IntentAwareEncoder(NUM_ITEMS, item_concepts, DIM, MAX_LEN)
        out = encoder(np.zeros((3, MAX_LEN), dtype=np.int64))
        assert out.shape == (3, MAX_LEN, DIM)

    def test_concept_matrix_shape_validated(self):
        with pytest.raises(ValueError):
            IntentAwareEncoder(NUM_ITEMS, np.zeros((5, NUM_CONCEPTS)), DIM, MAX_LEN)

    def test_too_long_input_rejected(self, item_concepts):
        encoder = IntentAwareEncoder(NUM_ITEMS, item_concepts, DIM, MAX_LEN)
        with pytest.raises(ValueError):
            encoder(np.zeros((1, MAX_LEN + 1), dtype=np.int64))

    def test_causal(self, item_concepts):
        encoder = IntentAwareEncoder(NUM_ITEMS, item_concepts, DIM, MAX_LEN,
                                     dropout=0.0)
        encoder.eval()
        inputs = np.ones((1, MAX_LEN), dtype=np.int64)
        base = encoder(inputs).data.copy()
        changed = inputs.copy()
        changed[0, -1] = 2
        out = encoder(changed).data
        np.testing.assert_allclose(out[0, :-1], base[0, :-1], atol=1e-5)


class TestIntentExtractor:
    def test_exact_lambda_active(self, rng):
        extractor = IntentExtractor(num_intents=3)
        extractor.eval()
        states = Tensor(rng.normal(size=(2, 5, DIM)).astype(np.float32))
        concepts = Parameter(rng.normal(size=(NUM_CONCEPTS, DIM)).astype(np.float32))
        intention, similarities = extractor(states, concepts)
        np.testing.assert_array_equal(intention.data.sum(axis=-1), 3.0)
        assert similarities.shape == (2, 5, NUM_CONCEPTS)

    def test_cosine_similarities_bounded(self, rng):
        extractor = IntentExtractor(num_intents=2, similarity="cosine",
                                    similarity_scale=1.0)
        states = Tensor(rng.normal(size=(1, 4, DIM)).astype(np.float32))
        concepts = Parameter(rng.normal(size=(NUM_CONCEPTS, DIM)).astype(np.float32))
        sims = extractor.similarities(states, concepts).data
        assert np.abs(sims).max() <= 1.0 + 1e-5

    def test_dot_similarity_unbounded(self, rng):
        extractor = IntentExtractor(num_intents=2, similarity="dot")
        states = Tensor((10 * rng.normal(size=(1, 4, DIM))).astype(np.float32))
        concepts = Parameter((10 * rng.normal(size=(NUM_CONCEPTS, DIM))).astype(np.float32))
        sims = extractor.similarities(states, concepts).data
        assert np.abs(sims).max() > 1.0

    def test_eval_mode_deterministic(self, rng):
        extractor = IntentExtractor(num_intents=3)
        extractor.eval()
        states = Tensor(rng.normal(size=(1, 3, DIM)).astype(np.float32))
        concepts = Parameter(rng.normal(size=(NUM_CONCEPTS, DIM)).astype(np.float32))
        a, _ = extractor(states, concepts)
        b, _ = extractor(states, concepts)
        np.testing.assert_array_equal(a.data, b.data)

    def test_train_mode_stochastic(self, rng):
        extractor = IntentExtractor(num_intents=3)
        extractor.train()
        states = Tensor(rng.normal(size=(4, 6, DIM)).astype(np.float32))
        concepts = Parameter(rng.normal(size=(NUM_CONCEPTS, DIM)).astype(np.float32))
        a, _ = extractor(states, concepts)
        b, _ = extractor(states, concepts)
        assert not np.array_equal(a.data, b.data)

    def test_invalid_similarity(self):
        with pytest.raises(ValueError):
            IntentExtractor(num_intents=2, similarity="euclid")

    def test_gradient_reaches_concepts(self, rng):
        extractor = IntentExtractor(num_intents=3)
        states = Tensor(rng.normal(size=(2, 3, DIM)).astype(np.float32),
                        requires_grad=True)
        concepts = Parameter(rng.normal(size=(NUM_CONCEPTS, DIM)).astype(np.float32))
        intention, _ = extractor(states, concepts)
        intention.sum().backward()
        assert concepts.grad is not None
        assert states.grad is not None


class TestStructuredTransition:
    def _inputs(self, rng):
        states = Tensor(rng.normal(size=(2, 5, DIM)).astype(np.float32))
        intention = np.zeros((2, 5, NUM_CONCEPTS), dtype=np.float32)
        intention[..., :3] = 1.0
        return states, Tensor(intention)

    def test_masked_features_zero(self, adjacency, rng):
        transition = StructuredIntentTransition(adjacency, DIM, INTENT_DIM,
                                                num_intents=3)
        states, intention = self._inputs(rng)
        features = transition.intent_features(states, intention)
        assert features.shape == (2, 5, NUM_CONCEPTS, INTENT_DIM)
        np.testing.assert_allclose(features.data[..., 3:, :], 0.0, atol=1e-7)
        assert np.abs(features.data[..., :3, :]).sum() > 0

    def test_transition_output_shapes(self, adjacency, rng):
        transition = StructuredIntentTransition(adjacency, DIM, INTENT_DIM,
                                                num_intents=3)
        states, intention = self._inputs(rng)
        features, next_intention = transition(states, intention)
        assert features.shape == (2, 5, NUM_CONCEPTS, INTENT_DIM)
        assert next_intention.shape == (2, 5, NUM_CONCEPTS)
        np.testing.assert_array_equal(next_intention.data.sum(axis=-1), 3.0)

    def test_without_gnn_is_identity_transition(self, adjacency, rng):
        transition = StructuredIntentTransition(adjacency, DIM, INTENT_DIM,
                                                num_intents=3, use_gnn=False)
        states, intention = self._inputs(rng)
        features = transition.intent_features(states, intention)
        np.testing.assert_array_equal(transition.transition(features).data,
                                      features.data)

    def test_gnn_spreads_to_neighbours(self, rng):
        """With message passing, inactive neighbour concepts can become active."""
        chain = np.zeros((NUM_CONCEPTS, NUM_CONCEPTS), dtype=np.float32)
        for i in range(NUM_CONCEPTS - 1):
            chain[i, i + 1] = chain[i + 1, i] = 1.0
        transition = StructuredIntentTransition(chain, DIM, INTENT_DIM,
                                                num_intents=2, gcn_layers=1)
        states = Tensor(rng.normal(size=(1, 1, DIM)).astype(np.float32))
        intention = np.zeros((1, 1, NUM_CONCEPTS), dtype=np.float32)
        intention[0, 0, [4, 5]] = 1.0
        upcoming = transition.transition(
            transition.intent_features(states, Tensor(intention)))
        # Neighbours 3 and 6 receive messages; distant concept 0 only bias.
        norms = np.linalg.norm(upcoming.data[0, 0], axis=-1)
        assert norms[3] != pytest.approx(norms[0], rel=0.2) or \
            norms[6] != pytest.approx(norms[0], rel=0.2)

    def test_next_intention_gradient_flows(self, adjacency, rng):
        transition = StructuredIntentTransition(adjacency, DIM, INTENT_DIM,
                                                num_intents=3)
        states = Tensor(rng.normal(size=(1, 2, DIM)).astype(np.float32),
                        requires_grad=True)
        _, intention = self._inputs(rng)
        features, next_intention = transition(states, intention[:1, :2])
        (next_intention.sum() + features.sum()).backward()
        assert states.grad is not None


class TestIntentDecoder:
    def test_output_shape(self, rng):
        decoder = IntentDecoder(NUM_CONCEPTS, INTENT_DIM, DIM)
        features = Tensor(rng.normal(size=(2, 5, NUM_CONCEPTS, INTENT_DIM)).astype(np.float32))
        intention = Tensor(np.ones((2, 5, NUM_CONCEPTS), dtype=np.float32))
        assert decoder(features, intention).shape == (2, 5, DIM)

    def test_inactive_concepts_do_not_contribute(self, rng):
        decoder = IntentDecoder(NUM_CONCEPTS, INTENT_DIM, DIM)
        features = Tensor(rng.normal(size=(1, 1, NUM_CONCEPTS, INTENT_DIM)).astype(np.float32))
        nothing = Tensor(np.zeros((1, 1, NUM_CONCEPTS), dtype=np.float32))
        out = decoder(features, nothing).data
        np.testing.assert_allclose(out, 0.0, atol=1e-6)

    def test_sum_over_active_concepts(self, rng):
        decoder = IntentDecoder(2, INTENT_DIM, DIM)
        features = Tensor(rng.normal(size=(1, 1, 2, INTENT_DIM)).astype(np.float32))
        both = decoder(features, Tensor(np.ones((1, 1, 2), dtype=np.float32))).data
        first = decoder(features, Tensor(np.array([[[1.0, 0.0]]], dtype=np.float32))).data
        second = decoder(features, Tensor(np.array([[[0.0, 1.0]]], dtype=np.float32))).data
        np.testing.assert_allclose(both, first + second, rtol=1e-4, atol=1e-5)
