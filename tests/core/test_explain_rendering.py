"""Rendering details of the explanation artefacts."""

import numpy as np

from repro.core import ISRec, ISRecConfig, IntentTracer
from repro.core.explain import IntentTrace, StepExplanation
from repro.utils import set_seed


class TestStepExplanationRendering:
    def _trace(self) -> IntentTrace:
        step = StepExplanation(
            position=0, item=3, item_title="avocado oil",
            item_concepts=["oil", "avocado"],
            candidate_intents=["oil", "avocado", "scalp"],
            activated_intents=["oil", "scalp"],
            next_intents=["scalp", "skin"],
            top_recommendations=[(7, "scalp serum"), (9, "skin balm")],
        )
        return IntentTrace(user=4, steps=[step])

    def test_render_contains_all_fields(self):
        text = self._trace().render()
        assert "user 4" in text
        assert "avocado oil" in text
        assert "oil, scalp" in text           # activated intents
        assert "scalp, skin" in text          # next intents
        assert "scalp serum(#7)" in text

    def test_empty_concepts_rendered_as_dash(self):
        step = StepExplanation(position=0, item=1, item_title="x",
                               item_concepts=[], candidate_intents=["a"],
                               activated_intents=["a"], next_intents=["a"],
                               top_recommendations=[])
        text = IntentTrace(user=0, steps=[step]).render()
        assert ": -" in text


class TestDotExport:
    def test_dot_structure(self, tiny_dataset):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=6,
                                   config=ISRecConfig(dim=16))
        tracer = IntentTracer(model, tiny_dataset)
        trace = tracer.trace(0)
        dot = trace.render_dot(tiny_dataset, step_index=0)
        assert dot.startswith("graph intents_user")
        assert dot.rstrip().endswith("}")
        assert dot.count("--") == tiny_dataset.concept_space.num_edges
        assert "fillcolor=orange" in dot        # activated intents coloured
        for name in trace.steps[0].activated_intents:
            assert f'label="{name}"' in dot


class TestTracerWindows:
    def test_long_history_truncated_to_max_len(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=4,
                                   config=ISRecConfig(dim=16))
        tracer = IntentTracer(model, tiny_dataset)
        longest_user = int(np.argmax([len(s) for s in tiny_dataset.sequences]))
        trace = tracer.trace(longest_user)
        assert len(trace.steps) == 4
        expected_items = tiny_dataset.sequences[longest_user][-4:]
        assert [s.item for s in trace.steps] == [int(i) for i in expected_items]

    def test_candidate_count_configurable(self, tiny_dataset):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=6,
                                   config=ISRecConfig(dim=16))
        tracer = IntentTracer(model, tiny_dataset, num_candidates=2,
                              num_recommendations=1)
        trace = tracer.trace(0)
        assert all(len(s.candidate_intents) == 2 for s in trace.steps)
        assert all(len(s.top_recommendations) == 1 for s in trace.steps)
