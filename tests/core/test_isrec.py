"""The assembled ISRec model, its config, variants, and explainability."""

import numpy as np
import pytest

from repro.core import (
    ISRec,
    ISRecConfig,
    IntentTracer,
    VARIANT_NAMES,
    build_variant,
    variant_config,
)
from repro.train import TrainConfig
from repro.utils import set_seed


class TestConfig:
    def test_defaults_valid(self):
        config = ISRecConfig()
        assert config.similarity == "cosine"
        assert config.use_gnn and config.use_intent

    def test_invalid_similarity(self):
        with pytest.raises(ValueError):
            ISRecConfig(similarity="manhattan")

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            ISRecConfig(num_intents=0)

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            ISRecConfig(tau=-1.0)

    def test_gnn_requires_intent(self):
        with pytest.raises(ValueError):
            ISRecConfig(use_intent=False, use_gnn=True)


class TestModel:
    def test_from_dataset_builds(self, tiny_dataset):
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        assert model.num_concepts == tiny_dataset.num_concepts
        assert model.item_embedding.num_embeddings == tiny_dataset.num_items + 1

    def test_shape_mismatch_rejected(self, tiny_dataset):
        bad_adjacency = np.eye(tiny_dataset.num_concepts + 1, dtype=np.float32)
        with pytest.raises(ValueError):
            ISRec(tiny_dataset.num_items, tiny_dataset.item_concepts,
                  bad_adjacency)

    def test_forward_detailed_keys(self, tiny_dataset):
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        model.eval()
        detail = model.forward_detailed(np.ones((2, 8), dtype=np.int64))
        for key in ("states", "similarities", "intention", "next_features",
                    "next_intention", "output"):
            assert key in detail
        assert detail["output"].shape == (2, 8, 16)
        lam = min(ISRecConfig().num_intents, tiny_dataset.num_concepts)
        np.testing.assert_array_equal(detail["intention"].data.sum(axis=-1), lam)

    def test_sequence_output_shape(self, tiny_dataset):
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        assert model.sequence_output(
            np.zeros((3, 8), dtype=np.int64)).shape == (3, 8, 16)

    def test_training_decreases_loss(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        history = model.fit(tiny_dataset, tiny_split,
                            TrainConfig(epochs=5, eval_every=10, patience=0))
        assert history.losses[-1] < history.losses[0]

    def test_parameters_not_duplicated(self, tiny_dataset):
        """The shared item embedding must be registered exactly once."""
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names))
        embedding_entries = [n for n in names if n.endswith("item_embedding.weight")]
        assert len(embedding_entries) == 1

    def test_no_residual_option(self, tiny_dataset):
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16), residual=False)
        model.eval()
        detail = model.forward_detailed(np.ones((1, 8), dtype=np.int64))
        # Without the residual the output is the pure decoded intent state.
        assert not np.allclose(detail["output"].data, detail["states"].data)

    def test_lambda_clamped_to_vocabulary(self, tiny_dataset):
        huge = ISRecConfig(dim=16, num_intents=10_000)
        model = ISRec.from_dataset(tiny_dataset, max_len=8, config=huge)
        model.eval()
        detail = model.forward_detailed(np.ones((1, 8), dtype=np.int64))
        np.testing.assert_array_equal(detail["intention"].data.sum(axis=-1),
                                      tiny_dataset.num_concepts)


class TestVariants:
    def test_variant_names(self):
        assert VARIANT_NAMES == ("isrec", "w/o GNN", "w/o GNN&Intent")

    def test_variant_configs(self):
        full = variant_config("isrec")
        assert full.use_gnn and full.use_intent
        no_gnn = variant_config("w/o GNN")
        assert not no_gnn.use_gnn and no_gnn.use_intent
        plain = variant_config("w/o GNN&Intent")
        assert not plain.use_gnn and not plain.use_intent

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            variant_config("w/o everything")

    def test_wo_gnn_intent_output_equals_states(self, tiny_dataset):
        model = build_variant("w/o GNN&Intent", tiny_dataset, max_len=8,
                              base_config=ISRecConfig(dim=16))
        model.eval()
        detail = model.forward_detailed(np.ones((1, 8), dtype=np.int64))
        np.testing.assert_array_equal(detail["output"].data,
                                      detail["states"].data)

    def test_wo_gnn_has_no_gcn_parameters(self, tiny_dataset):
        model = build_variant("w/o GNN", tiny_dataset, max_len=8,
                              base_config=ISRecConfig(dim=16))
        assert all("gcn" not in name for name, _ in model.named_parameters())

    def test_full_variant_named_isrec(self, tiny_dataset):
        model = build_variant("isrec", tiny_dataset, max_len=8,
                              base_config=ISRecConfig(dim=16))
        assert model.name == "ISRec"


class TestExplainability:
    @pytest.fixture()
    def trained(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        model.fit(tiny_dataset, tiny_split,
                  TrainConfig(epochs=2, eval_every=10, patience=0))
        return model

    def test_trace_structure(self, trained, tiny_dataset):
        tracer = IntentTracer(trained, tiny_dataset, num_candidates=4,
                              num_recommendations=2)
        trace = tracer.trace(user=0)
        sequence = tiny_dataset.sequences[0][-trained.max_len:]
        assert len(trace.steps) == len(sequence)
        for step, item in zip(trace.steps, sequence):
            assert step.item == int(item)
            assert len(step.candidate_intents) == 4
            assert len(step.top_recommendations) == 2
            lam = min(ISRecConfig().num_intents, tiny_dataset.num_concepts)
            assert len(step.activated_intents) == lam
            assert len(step.next_intents) == lam
            for name in step.activated_intents + step.next_intents:
                assert name in tiny_dataset.concept_space.names

    def test_trace_render_readable(self, trained, tiny_dataset):
        tracer = IntentTracer(trained, tiny_dataset)
        text = tracer.trace(user=1).render()
        assert "activated intents" in text
        assert "next intents" in text
        assert "recommends" in text

    def test_tracer_rejects_intentless_model(self, tiny_dataset):
        plain = build_variant("w/o GNN&Intent", tiny_dataset, max_len=8,
                              base_config=ISRecConfig(dim=16))
        with pytest.raises(ValueError):
            IntentTracer(plain, tiny_dataset)

    def test_trace_custom_sequence(self, trained, tiny_dataset):
        tracer = IntentTracer(trained, tiny_dataset)
        custom = np.array([1, 2, 3])
        trace = tracer.trace(user=0, sequence=custom)
        assert [step.item for step in trace.steps] == [1, 2, 3]
