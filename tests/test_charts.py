"""ASCII chart rendering."""

import pytest

from repro.utils.charts import ascii_chart


class TestAsciiChart:
    def test_contains_markers_and_axes(self):
        chart = ascii_chart([(1, 0.1), (2, 0.3), (3, 0.2)], title="demo")
        assert "demo" in chart
        assert chart.count("*") == 3
        assert "+" in chart and "|" in chart

    def test_min_max_labels(self):
        chart = ascii_chart([(0, 0.0), (10, 1.0)])
        assert "1.0000" in chart
        assert "0.0000" in chart

    def test_single_point(self):
        chart = ascii_chart([(5, 0.5)])
        assert chart.count("*") == 1

    def test_flat_series(self):
        chart = ascii_chart([(1, 0.5), (2, 0.5), (3, 0.5)])
        assert chart.count("*") == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([(1, 1)], width=4)

    def test_unsorted_points_accepted(self):
        chart_sorted = ascii_chart([(1, 0.1), (2, 0.2), (3, 0.3)])
        chart_shuffled = ascii_chart([(3, 0.3), (1, 0.1), (2, 0.2)])
        assert chart_sorted == chart_shuffled

    def test_peak_is_highest_row(self):
        """The maximum point must sit on the top plotted row."""
        chart = ascii_chart([(1, 0.0), (2, 1.0), (3, 0.0)], height=6)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert "*" in rows[0]
