"""The leave-one-out ranking evaluator."""

import numpy as np
import pytest

from repro.eval import MetricReport, RankingEvaluator, evaluate_model


class OracleModel:
    """Scores the true target highest (knows the candidates' first column)."""

    max_len = 10

    def __init__(self, targets):
        self.targets = targets

    def score(self, users, inputs, candidates):
        return (candidates == self.targets[users][:, None]).astype(np.float64)


class RandomModel:
    max_len = 10

    def __init__(self, seed=0):
        self.rng = np.random.default_rng(seed)

    def score(self, users, inputs, candidates):
        return self.rng.normal(size=candidates.shape)


class TestRankingEvaluator:
    def test_oracle_scores_perfectly(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20)
        oracle = OracleModel(tiny_split.test_targets)
        report = evaluator.evaluate(oracle, stage="test")
        assert report.hr1 == 1.0
        assert report.mrr == 1.0

    def test_random_model_near_chance(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20)
        report = evaluator.evaluate(RandomModel(), stage="test")
        # 21 candidates: expected HR@10 ~ 10/21 ~ 0.48
        assert 0.3 < report.hr10 < 0.65

    def test_negatives_exclude_seen(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20)
        negatives = evaluator.negatives("test")
        for user in range(tiny_split.num_users):
            assert not set(negatives[user].tolist()) & tiny_split.seen_items(user)

    def test_candidates_have_positive_first(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20)
        candidates = evaluator.candidates("valid")
        np.testing.assert_array_equal(candidates[:, 0], tiny_split.valid_targets)

    def test_negatives_cached(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20)
        assert evaluator.negatives("test") is evaluator.negatives("test")

    def test_valid_and_test_negatives_differ(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20)
        assert not np.array_equal(evaluator.negatives("valid"),
                                  evaluator.negatives("test"))

    def test_invalid_stage(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items)
        with pytest.raises(ValueError):
            evaluator.negatives("train")

    def test_batched_evaluation_matches_full(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20)
        oracle = OracleModel(tiny_split.test_targets)
        small_batches = evaluator.evaluate(oracle, stage="test", batch_size=3)
        one_batch = evaluator.evaluate(oracle, stage="test", batch_size=10_000)
        assert small_batches == one_batch

    def test_evaluate_model_wrapper(self, tiny_dataset, tiny_split):
        report = evaluate_model(OracleModel(tiny_split.test_targets),
                                tiny_split, tiny_dataset.num_items,
                                num_negatives=20)
        assert isinstance(report, MetricReport)
        assert report.hr1 == 1.0

    def test_popularity_weighting_changes_negatives(self, tiny_dataset, tiny_split):
        uniform = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                   num_negatives=20)
        weighted = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                    num_negatives=20,
                                    popularity=tiny_dataset.item_popularity())
        assert not np.array_equal(uniform.negatives("test"),
                                  weighted.negatives("test"))
