"""HR@k, NDCG@k, MRR, and rank computation (Eq. 15-17)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    MetricReport,
    hit_rate_at_k,
    mean_reciprocal_rank,
    ndcg_at_k,
    ranks_from_scores,
)


class TestRanks:
    def test_positive_best_gets_rank_one(self):
        scores = np.array([[10.0, 1.0, 2.0, 3.0]])
        assert ranks_from_scores(scores)[0] == 1

    def test_positive_worst_gets_last_rank(self):
        scores = np.array([[0.0, 1.0, 2.0, 3.0]])
        assert ranks_from_scores(scores)[0] == 4

    def test_middle_rank(self):
        scores = np.array([[2.5, 1.0, 2.0, 3.0]])
        assert ranks_from_scores(scores)[0] == 2

    def test_ties_are_pessimistic(self):
        scores = np.array([[1.0, 1.0, 1.0, 0.0]])
        assert ranks_from_scores(scores)[0] == 3

    def test_positive_column_argument(self):
        scores = np.array([[1.0, 10.0, 2.0]])
        assert ranks_from_scores(scores, positive_column=1)[0] == 1

    def test_batched(self):
        scores = np.array([[5.0, 1.0], [0.0, 9.0]])
        np.testing.assert_array_equal(ranks_from_scores(scores), [1, 2])

    def test_all_nan_row_ranks_last(self):
        """Regression: an all-NaN row (diverged model) used to get rank 1,
        reporting HR@1 = 1.0 for a model that emits garbage."""
        scores = np.full((1, 101), np.nan)
        assert ranks_from_scores(scores)[0] == 101

    def test_nan_negatives_count_as_better(self):
        # Positive 5.0 beats both finite negatives, but the NaN negative
        # is unorderable and must be counted pessimistically above it.
        scores = np.array([[5.0, 1.0, np.nan, 2.0]])
        assert ranks_from_scores(scores)[0] == 2

    def test_nan_positive_ranks_last(self):
        scores = np.array([[np.nan, 1.0, 2.0, 3.0]])
        assert ranks_from_scores(scores)[0] == 4

    def test_nan_positive_column_argument(self):
        scores = np.array([[1.0, np.nan, 2.0]])
        assert ranks_from_scores(scores, positive_column=1)[0] == 3

    def test_nan_rows_do_not_disturb_finite_rows(self):
        scores = np.array([[5.0, 1.0, 2.0],
                           [np.nan, np.nan, np.nan],
                           [0.0, 1.0, np.nan]])
        np.testing.assert_array_equal(ranks_from_scores(scores), [1, 3, 3])

    def test_infinities_need_no_special_casing(self):
        scores = np.array([[np.inf, 1.0, -np.inf], [-np.inf, 0.0, np.inf]])
        np.testing.assert_array_equal(ranks_from_scores(scores), [1, 3])

    def test_all_nan_scores_give_worst_metrics(self):
        ranks = ranks_from_scores(np.full((4, 101), np.nan))
        assert hit_rate_at_k(ranks, 10) == 0.0
        assert ndcg_at_k(ranks, 10) == 0.0


class TestHitRate:
    def test_basic(self):
        ranks = np.array([1, 3, 11, 2])
        assert hit_rate_at_k(ranks, 10) == pytest.approx(0.75)
        assert hit_rate_at_k(ranks, 1) == pytest.approx(0.25)
        assert hit_rate_at_k(ranks, 2) == pytest.approx(0.5)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hit_rate_at_k(np.array([1]), 0)


class TestNDCG:
    def test_rank_one_is_one(self):
        assert ndcg_at_k(np.array([1]), 10) == pytest.approx(1.0)

    def test_rank_two_discounted(self):
        assert ndcg_at_k(np.array([2]), 10) == pytest.approx(1.0 / np.log2(3))

    def test_out_of_window_is_zero(self):
        assert ndcg_at_k(np.array([11]), 10) == 0.0

    def test_ndcg1_equals_hr1(self):
        ranks = np.array([1, 2, 5, 1, 9])
        assert ndcg_at_k(ranks, 1) == pytest.approx(hit_rate_at_k(ranks, 1))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ndcg_at_k(np.array([1]), -1)


class TestMRR:
    def test_basic(self):
        assert mean_reciprocal_rank(np.array([1, 2, 4])) == pytest.approx(
            (1.0 + 0.5 + 0.25) / 3)


class TestMetricReport:
    def test_from_ranks(self):
        ranks = np.array([1, 6, 11])
        report = MetricReport.from_ranks(ranks)
        assert report.hr1 == pytest.approx(1 / 3)
        assert report.hr10 == pytest.approx(2 / 3)
        assert report["HR@5"] == pytest.approx(1 / 3)

    def test_as_dict_keys(self):
        report = MetricReport.from_ranks(np.array([1]))
        assert list(report.as_dict()) == MetricReport.metric_names()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=101), min_size=1, max_size=50))
def test_metric_monotonicity(ranks):
    """HR@k and NDCG@k are non-decreasing in k; all metrics are in [0, 1]."""
    ranks = np.asarray(ranks)
    values_hr = [hit_rate_at_k(ranks, k) for k in (1, 5, 10)]
    values_ndcg = [ndcg_at_k(ranks, k) for k in (1, 5, 10)]
    assert values_hr == sorted(values_hr)
    assert values_ndcg == sorted(values_ndcg)
    for value in values_hr + values_ndcg + [mean_reciprocal_rank(ranks)]:
        assert 0.0 <= value <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=50), st.integers(min_value=0, max_value=10))
def test_ranks_consistent_with_sorting(num_candidates, seed):
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=(1, num_candidates))
    rank = ranks_from_scores(scores)[0]
    true_rank = 1 + int((scores[0, 1:] > scores[0, 0]).sum())
    assert rank == true_rank  # continuous scores: ties have measure zero
