"""Properties of the full evaluation protocol (paired candidates, fairness)."""

import numpy as np
import pytest

from repro.eval import RankingEvaluator, paired_bootstrap
from repro.analysis import rank_distribution


class ConstantModel:
    """Scores every candidate identically — must land at the bottom."""

    max_len = 8

    def score(self, users, inputs, candidates):
        return np.zeros(candidates.shape)


class PopularityModel:
    max_len = 8

    def __init__(self, popularity):
        self.popularity = popularity

    def score(self, users, inputs, candidates):
        return self.popularity[candidates]


class TestProtocolProperties:
    def test_constant_scores_rank_last(self, tiny_dataset, tiny_split):
        """Pessimistic tie-breaking: a constant scorer gets the worst rank."""
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=15)
        ranks = rank_distribution(ConstantModel(), evaluator)
        np.testing.assert_array_equal(ranks, 16)

    def test_candidates_paired_across_models(self, tiny_dataset, tiny_split):
        """Two models evaluated on the same evaluator see identical candidates."""
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=15)
        first = evaluator.candidates("test").copy()
        evaluator.evaluate(ConstantModel())
        second = evaluator.candidates("test")
        np.testing.assert_array_equal(first, second)

    def test_popularity_negatives_hurt_popularity_scorer(self, tiny_dataset,
                                                         tiny_split):
        """The BERT4Rec-style protocol specifically punishes popularity-only
        scoring relative to uniform negatives."""
        popularity = tiny_dataset.item_popularity().astype(np.float64)
        model = PopularityModel(popularity)
        uniform = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                   num_negatives=15, seed=0)
        weighted = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                    num_negatives=15, seed=0,
                                    popularity=popularity)
        hr_uniform = uniform.evaluate(model).hr10
        hr_weighted = weighted.evaluate(model).hr10
        assert hr_weighted < hr_uniform

    def test_bootstrap_on_paired_ranks(self, tiny_dataset, tiny_split):
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=15)
        ranks_const = rank_distribution(ConstantModel(), evaluator)
        model = PopularityModel(tiny_dataset.item_popularity().astype(np.float64))
        ranks_pop = rank_distribution(model, evaluator)
        result = paired_bootstrap(ranks_pop, ranks_const, metric="MRR", seed=0)
        assert result.difference > 0
        assert result.p_value < 0.05
