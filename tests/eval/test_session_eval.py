"""Session-aware evaluation: split semantics, evaluator grouping, reports."""

import numpy as np
import pytest

from repro.data import session_starts
from repro.data.synthetic import SimulatorConfig, generate_dataset
from repro.eval import SessionEvaluator, SessionReport, session_split
from repro.eval.metrics import MetricReport


@pytest.fixture(scope="module")
def session_dataset():
    config = SimulatorConfig(
        name="sess-eval", domain="beauty", num_users=80, num_items=60,
        num_concepts=24, avg_length=10.0, max_length=40,
        concepts_per_item=4.0, true_lambda=2, intent_match_weight=8.0,
        popularity_weight=0.3, noise_scale=0.5, transition_prob=0.3,
        session_avg_length=3.0, seed=21,
    )
    return generate_dataset(config)


class _OracleModel:
    """Scores the true target highest — rank 1 everywhere."""

    max_len = 12

    def score(self, users, inputs, candidates):
        scores = np.zeros(candidates.shape, dtype=np.float64)
        scores[:, 0] = 1.0
        return scores


class _AntiOracleModel:
    """Scores the true target lowest — worst possible ranks."""

    max_len = 12

    def score(self, users, inputs, candidates):
        scores = np.ones(candidates.shape, dtype=np.float64)
        scores[:, 0] = 0.0
        return scores


class TestSessionSplit:
    def test_requires_session_annotations(self, tiny_dataset):
        with pytest.raises(ValueError, match="session annotations"):
            session_split(tiny_dataset)

    def test_targets_are_session_openers(self, session_dataset):
        split = session_split(session_dataset)
        kept = {tuple(seq.tolist()) for seq in split.full_sequences}
        matched = 0
        for seq, sessions in zip(session_dataset.sequences,
                                 session_dataset.session_ids):
            starts = session_starts(sessions)
            if len(starts) < 2:
                continue
            boundary = int(starts[-1])
            if boundary < 2:
                continue
            truncated = tuple(seq[:boundary + 1].tolist())
            assert truncated in kept
            # The held-out (last) item opens the final session.
            assert sessions[boundary] != sessions[boundary - 1]
            matched += 1
        assert matched == len(split.full_sequences) > 0

    def test_split_supports_leave_one_out_protocol(self, session_dataset):
        split = session_split(session_dataset)
        for seq in split.full_sequences:
            assert len(seq) >= 3  # train >= 1, valid, test

    def test_no_eligible_users_raises(self, session_dataset):
        with pytest.raises(ValueError, match="enough sessions"):
            session_split(session_dataset, min_train=10_000)


class TestSessionEvaluator:
    def test_requires_session_annotations(self, tiny_dataset):
        with pytest.raises(ValueError, match="session annotations"):
            SessionEvaluator(tiny_dataset)

    def test_point_counts(self, session_dataset):
        evaluator = SessionEvaluator(session_dataset, num_negatives=20,
                                     seed=0, max_within_per_user=2)
        expected = 0
        for seq, sessions in zip(session_dataset.sequences,
                                 session_dataset.session_ids):
            starts = session_starts(sessions)
            if len(starts) < 2:
                continue
            boundary = int(starts[-1])
            if boundary < 2:
                continue
            expected += 1 + min(len(seq) - boundary - 1, 2)
        assert evaluator.num_points == expected > 0

    def test_negatives_are_unseen_and_shared(self, session_dataset):
        evaluator = SessionEvaluator(session_dataset, num_negatives=20, seed=3)
        for user, negatives in evaluator._negatives.items():
            seen = set(session_dataset.sequences[user].tolist())
            assert not seen & set(negatives.tolist())
            assert len(set(negatives.tolist())) == evaluator.num_negatives
        again = SessionEvaluator(session_dataset, num_negatives=20, seed=3)
        for user in evaluator._negatives:
            np.testing.assert_array_equal(evaluator._negatives[user],
                                          again._negatives[user])

    def test_negative_count_clamped(self, session_dataset):
        evaluator = SessionEvaluator(session_dataset, num_negatives=10_000)
        assert evaluator.num_negatives < 10_000
        assert evaluator.num_negatives >= 1

    def test_oracle_model_scores_perfectly(self, session_dataset):
        evaluator = SessionEvaluator(session_dataset, num_negatives=20)
        report = evaluator.evaluate(_OracleModel())
        assert report.overall.hr10 == pytest.approx(1.0)
        assert report.boundary is not None
        assert report.boundary.hr10 == pytest.approx(1.0)
        assert report.num_boundary + report.num_within == evaluator.num_points

    def test_anti_oracle_scores_zero(self, session_dataset):
        evaluator = SessionEvaluator(session_dataset, num_negatives=20)
        report = evaluator.evaluate(_AntiOracleModel())
        assert report.overall.hr10 == pytest.approx(0.0)

    def test_bad_score_shape_rejected(self, session_dataset):
        class BadModel:
            max_len = 12

            def score(self, users, inputs, candidates):
                return np.zeros((len(inputs), 2))

        evaluator = SessionEvaluator(session_dataset, num_negatives=20)
        with pytest.raises(ValueError, match="shape"):
            evaluator.evaluate(BadModel())


class TestSessionReport:
    def test_round_trip(self, session_dataset):
        evaluator = SessionEvaluator(session_dataset, num_negatives=20)
        report = evaluator.evaluate(_OracleModel())
        restored = SessionReport.from_dict(report.as_dict())
        assert restored == report

    def test_round_trip_with_empty_group(self):
        report = SessionReport(
            overall=MetricReport.from_ranks(np.array([1, 2, 3])),
            boundary=MetricReport.from_ranks(np.array([1, 2, 3])),
            within=None, num_boundary=3, num_within=0)
        assert SessionReport.from_dict(report.as_dict()) == report
