"""Paired bootstrap and sign tests."""

import numpy as np
import pytest

from repro.eval import paired_bootstrap, sign_test


class TestPairedBootstrap:
    def test_clear_difference_is_significant(self, rng):
        better = rng.integers(1, 4, size=300)    # mostly top-3 ranks
        worse = rng.integers(20, 90, size=300)   # deep ranks
        result = paired_bootstrap(better, worse, metric="HR@10", seed=0)
        assert result.difference > 0.5
        assert result.p_value < 0.01
        assert result.significant
        assert "significant" in result.summary()

    def test_identical_models_not_significant(self, rng):
        ranks = rng.integers(1, 101, size=200)
        result = paired_bootstrap(ranks, ranks.copy(), metric="MRR", seed=0)
        assert result.difference == pytest.approx(0.0)
        assert not result.significant

    def test_small_noisy_difference_not_significant(self, rng):
        base = rng.integers(1, 101, size=60)
        nudged = base.copy()
        nudged[0] = max(1, nudged[0] - 1)  # one user improves by one rank
        result = paired_bootstrap(nudged, base, metric="MRR", seed=0)
        assert result.p_value > 0.05

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            paired_bootstrap(np.array([1]), np.array([1]), metric="AUC")

    def test_unpaired_shapes_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.arange(1, 5), np.arange(1, 6))

    def test_p_value_bounds(self, rng):
        a = rng.integers(1, 101, size=100)
        b = rng.integers(1, 101, size=100)
        result = paired_bootstrap(a, b, num_samples=500, seed=1)
        assert 0.0 < result.p_value <= 1.0


class TestSignTest:
    def test_consistent_wins_significant(self):
        a = np.full(100, 2)
        b = np.full(100, 5)
        assert sign_test(a, b) < 0.001

    def test_all_ties_p_one(self):
        ranks = np.arange(1, 51)
        assert sign_test(ranks, ranks.copy()) == 1.0

    def test_balanced_wins_not_significant(self, rng):
        a = rng.integers(1, 101, size=400)
        b = rng.permutation(a)
        assert sign_test(a, b) > 0.05

    def test_unpaired_rejected(self):
        with pytest.raises(ValueError):
            sign_test(np.array([1, 2]), np.array([1]))
