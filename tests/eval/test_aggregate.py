"""Multi-seed aggregation."""

import numpy as np
import pytest

from repro.eval.aggregate import AggregateReport, aggregate_reports
from repro.eval.metrics import MetricReport


def report(value: float) -> MetricReport:
    return MetricReport(value, value, value, value, value, value)


class TestAggregateReports:
    def test_mean_and_std(self):
        agg = aggregate_reports([report(0.2), report(0.4)])
        assert agg.mean.hr10 == pytest.approx(0.3)
        assert agg.std.hr10 == pytest.approx(np.std([0.2, 0.4], ddof=1))
        assert agg.num_runs == 2

    def test_single_run_zero_std(self):
        agg = aggregate_reports([report(0.5)])
        assert agg.std.hr10 == 0.0
        assert agg.mean.hr10 == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_reports([])

    def test_formatted(self):
        agg = aggregate_reports([report(0.25), report(0.35)])
        text = agg.formatted("HR@10", digits=2)
        assert text.startswith("0.30")
        assert "±" in text


class TestRunModelSeeds:
    def test_aggregates_over_seeds(self):
        from repro.experiments import fast_config, prepare, run_model_seeds

        config = fast_config(dim=16, num_negatives=30)
        dataset, split, evaluator = prepare("epinions", config, scale=0.35)
        agg = run_model_seeds("PopRec", dataset, split, evaluator, config,
                              seeds=[0, 1])
        assert isinstance(agg, AggregateReport)
        assert agg.num_runs == 2
        # PopRec is deterministic given the split: identical across seeds.
        assert agg.std.hr10 == pytest.approx(0.0)

    def test_neural_model_varies_across_seeds(self):
        from repro.experiments import fast_config, prepare, run_model_seeds

        config = fast_config(dim=16, num_negatives=30)
        dataset, split, evaluator = prepare("epinions", config, scale=0.35)
        agg = run_model_seeds("SASRec", dataset, split, evaluator, config,
                              seeds=[0, 1])
        assert agg.num_runs == 2
        assert 0.0 <= agg.mean.hr10 <= 1.0
