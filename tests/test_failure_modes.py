"""Failure injection: the library must fail loudly and informatively."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor
from repro.train import TrainConfig, Trainer, TrainingDiverged


class ExplodingModel(nn.Module):
    """Produces a NaN loss on the second batch."""

    name = "exploding"

    def __init__(self):
        super().__init__()
        self.weight = nn.Parameter(np.ones(1, dtype=np.float32))
        self._calls = 0

    def training_batches(self, rng):
        yield None
        yield None

    def training_loss(self, _batch):
        self._calls += 1
        if self._calls >= 2:
            return (self.weight * Tensor(np.array([np.nan], dtype=np.float32))).sum()
        return (self.weight * self.weight).sum()


class TestTrainerFailureModes:
    def test_nan_loss_raises_with_context(self):
        """A persistently NaN loss exhausts the recovery budget and raises a
        structured TrainingDiverged (a RuntimeError) with epoch/LR context."""
        trainer = Trainer(ExplodingModel(), TrainConfig(epochs=3, lr=0.1))
        with pytest.raises(RuntimeError, match="non-finite training loss"):
            trainer.fit()

    def test_nan_loss_without_retry_budget(self):
        trainer = Trainer(ExplodingModel(),
                          TrainConfig(epochs=3, lr=0.1, divergence_retries=0))
        with pytest.raises(TrainingDiverged) as excinfo:
            trainer.fit()
        assert excinfo.value.epoch == 1
        assert excinfo.value.retries == 0

    def test_validate_exception_propagates(self):
        class Healthy(nn.Module):
            name = "healthy"

            def __init__(self):
                super().__init__()
                self.weight = nn.Parameter(np.ones(1, dtype=np.float32))

            def training_batches(self, rng):
                yield None

            def training_loss(self, _batch):
                return (self.weight * self.weight).sum()

        def broken_validate():
            raise ZeroDivisionError("validation blew up")

        trainer = Trainer(Healthy(), TrainConfig(epochs=2, eval_every=1),
                          validate=broken_validate)
        with pytest.raises(ZeroDivisionError):
            trainer.fit()


class TestShapeErrors:
    def test_matmul_shape_mismatch_is_numpy_error(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.ones((4, 5)))
        with pytest.raises(ValueError):
            a @ b

    def test_backward_twice_on_same_graph(self):
        """After backward() the tape is released; a second call is a no-op
        on interior nodes but must not crash on the root."""
        a = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        out = (a * 3.0).sum()
        out.backward()
        first = a.grad.copy()
        out.backward()  # root re-accumulates its own grad only
        np.testing.assert_allclose(a.grad, first)  # parents were released

    def test_concat_dimension_mismatch(self):
        from repro.tensor.tensor import concatenate

        with pytest.raises(ValueError):
            concatenate([Tensor(np.ones((2, 3))), Tensor(np.ones((3, 3)))], axis=1)


class TestEvaluatorMisuse:
    def test_score_contract_shape_enforced_by_numpy(self, tiny_dataset, tiny_split):
        """A model returning the wrong score shape surfaces immediately."""
        from repro.eval import RankingEvaluator

        class BadModel:
            max_len = 8

            def score(self, users, inputs, candidates):
                return np.zeros((len(users), 1))  # wrong width

        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=10)
        with pytest.raises(ValueError):
            evaluator.evaluate(BadModel())
