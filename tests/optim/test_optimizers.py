"""Optimizers: convergence, weight decay, clipping, schedules."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, ConstantLR, ExponentialDecay, WarmupLinearDecay, clip_grad_norm
from repro.tensor import Tensor, functional as F


def fit_linear(optimizer_factory, steps=400):
    """Fit y = Xw on random data; return the final MSE."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(64, 4)).astype(np.float32)
    w = np.array([1.0, -2.0, 3.0, 0.5], dtype=np.float32)
    y = X @ w
    layer = nn.Linear(4, 1)
    optimizer = optimizer_factory(layer.parameters())
    loss = None
    for _ in range(steps):
        optimizer.zero_grad()
        loss = F.mean_squared_error(layer(Tensor(X)).reshape(-1), y)
        loss.backward()
        optimizer.step()
    return float(loss.data)


class TestConvergence:
    def test_sgd_converges(self):
        assert fit_linear(lambda p: SGD(p, lr=0.05)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert fit_linear(lambda p: SGD(p, lr=0.02, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert fit_linear(lambda p: Adam(p, lr=0.05)) < 1e-5

    def test_adam_faster_than_sgd_here(self):
        adam = fit_linear(lambda p: Adam(p, lr=0.05), steps=100)
        sgd = fit_linear(lambda p: SGD(p, lr=0.001), steps=100)
        assert adam < sgd


class TestValidation:
    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1, dtype=np.float32))], lr=0.0)

    def test_negative_weight_decay_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=0.1, weight_decay=-1)

    def test_bad_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=0.1, momentum=1.0)

    def test_bad_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1, dtype=np.float32))], lr=0.1, betas=(1.0, 0.9))


class TestWeightDecay:
    def test_decay_shrinks_weights(self):
        param = Parameter(np.full(3, 10.0, dtype=np.float32))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(3, dtype=np.float32)
        optimizer.step()
        # grad + 2 * wd * theta = 10; step = -lr * 10 = -1
        np.testing.assert_allclose(param.data, 9.0, rtol=1e-5)

    def test_none_grad_skipped(self):
        param = Parameter(np.ones(3, dtype=np.float32))
        optimizer = Adam([param], lr=0.1, weight_decay=0.5)
        optimizer.step()  # no grad set: must be a no-op
        np.testing.assert_array_equal(param.data, np.ones(3))


class TestClipGradNorm:
    def test_large_gradient_scaled(self):
        param = Parameter(np.zeros(4, dtype=np.float32))
        param.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-4)

    def test_small_gradient_untouched(self):
        param = Parameter(np.zeros(4, dtype=np.float32))
        param.grad = np.full(4, 0.1, dtype=np.float32)
        clip_grad_norm([param], max_norm=5.0)
        np.testing.assert_allclose(param.grad, 0.1)

    def test_missing_gradients_ignored(self):
        param = Parameter(np.zeros(4, dtype=np.float32))
        assert clip_grad_norm([param], max_norm=1.0) == 0.0


class TestSchedules:
    def _optimizer(self, lr=1.0):
        return SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=lr)

    def test_constant(self):
        optimizer = self._optimizer(0.5)
        schedule = ConstantLR(optimizer)
        assert schedule.step() == 0.5
        assert optimizer.lr == 0.5

    def test_exponential_decay(self):
        optimizer = self._optimizer(1.0)
        schedule = ExponentialDecay(optimizer, gamma=0.5, min_lr=0.1)
        assert schedule.step() == pytest.approx(0.5)
        assert schedule.step() == pytest.approx(0.25)
        for _ in range(10):
            schedule.step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecay(self._optimizer(), gamma=0.0)

    def test_warmup_then_decay(self):
        optimizer = self._optimizer(1.0)
        schedule = WarmupLinearDecay(optimizer, warmup_steps=2, total_steps=6)
        lrs = [schedule.step() for _ in range(6)]
        assert lrs[0] == pytest.approx(0.5)
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0)
        assert all(a >= b for a, b in zip(lrs[1:], lrs[2:]))

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            WarmupLinearDecay(self._optimizer(), warmup_steps=5, total_steps=5)
