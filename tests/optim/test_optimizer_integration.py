"""Optimizer behaviour inside realistic training graphs."""

import numpy as np
import pytest

from repro import nn
from repro.optim import SGD, Adam
from repro.tensor import Tensor, functional as F


class TestSharedParameterUpdates:
    def test_embedding_rows_update_only_when_used(self):
        table = nn.Embedding(6, 4)
        optimizer = SGD([*table.parameters()], lr=0.5)
        before = table.weight.data.copy()
        optimizer.zero_grad()
        out = table(np.array([1, 3]))
        out.sum().backward()
        optimizer.step()
        changed = ~np.all(table.weight.data == before, axis=1)
        np.testing.assert_array_equal(changed, [False, True, False, True,
                                                False, False])

    def test_weight_decay_updates_unused_rows_too(self):
        """Classic L2 (Eq. 14) pulls every parameter toward zero, even rows
        that received no data gradient this step — provided they have *a*
        gradient entry. Rows without any gradient are skipped entirely."""
        table = nn.Embedding(4, 3, std=1.0)
        optimizer = SGD([*table.parameters()], lr=0.1, weight_decay=0.5)
        before = table.weight.data.copy()
        optimizer.zero_grad()
        table(np.array([0])).sum().backward()
        optimizer.step()
        # Row 0 got grad + decay; rows 1..3 got decay through the same
        # gradient array (zeros + decay term).
        assert not np.allclose(table.weight.data[0], before[0])
        assert not np.allclose(table.weight.data[2],
                               before[2])  # decay applied via zero grad


class TestAdamState:
    def test_moments_track_parameters(self):
        params = [nn.Parameter(np.zeros(3, dtype=np.float32))]
        optimizer = Adam(params, lr=0.1)
        params[0].grad = np.ones(3, dtype=np.float32)
        optimizer.step()
        assert optimizer._step_count == 1
        assert np.abs(optimizer._first_moment[0]).sum() > 0
        # First step with bias correction moves by ~lr.
        np.testing.assert_allclose(params[0].data, -0.1, rtol=1e-4)

    def test_step_without_any_grads_advances_time_only(self):
        params = [nn.Parameter(np.ones(2, dtype=np.float32))]
        optimizer = Adam(params, lr=0.1)
        optimizer.step()
        np.testing.assert_array_equal(params[0].data, np.ones(2))


class TestEndToEndClassification:
    def test_small_classifier_reaches_high_accuracy(self):
        """A 2-layer MLP must solve a linearly separable 2-class problem."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 2)).astype(np.float32)
        y = (X[:, 0] + X[:, 1] > 0).astype(np.int64)
        from repro.utils import set_seed

        set_seed(0)
        model = nn.Sequential(nn.Linear(2, 16), nn.ReLU(), nn.Linear(16, 2))
        optimizer = Adam(model.parameters(), lr=0.02)
        for _ in range(150):
            optimizer.zero_grad()
            logits = model(Tensor(X))
            loss = F.cross_entropy(logits, y)
            loss.backward()
            optimizer.step()
        predictions = model(Tensor(X)).data.argmax(axis=1)
        assert (predictions == y).mean() > 0.95
