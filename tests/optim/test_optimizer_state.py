"""Optimizer/scheduler serialization: state_dict round-trips must reproduce
identical parameter trajectories."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.optim import SGD, Adam, ConstantLR, ExponentialDecay, WarmupLinearDecay
from repro.tensor import Tensor, functional as F


def make_problem(seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(64, 4)).astype(np.float32)
    w = np.array([1.0, -2.0, 3.0, 0.5], dtype=np.float32)
    return X, X @ w


def take_steps(layer, optimizer, X, y, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = F.mean_squared_error(layer(Tensor(X)).reshape(-1), y)
        loss.backward()
        optimizer.step()


@pytest.mark.parametrize("factory", [
    lambda params: Adam(params, lr=0.05, weight_decay=1e-4),
    lambda params: SGD(params, lr=0.02, momentum=0.9),
    lambda params: SGD(params, lr=0.05),
], ids=["adam", "sgd-momentum", "sgd-plain"])
def test_roundtrip_reproduces_trajectory(factory):
    """After 5 warm-up steps, serialize; a fresh optimizer loaded from that
    state must produce bit-identical parameters for 5 further steps."""
    X, y = make_problem()

    layer = nn.Linear(4, 1)
    optimizer = factory(layer.parameters())
    take_steps(layer, optimizer, X, y, 5)
    saved_weights = {name: p.data.copy() for name, p in layer.named_parameters()}
    saved_optim = optimizer.state_dict()

    # Continue the original for 5 more steps.
    take_steps(layer, optimizer, X, y, 5)

    # Rebuild from the snapshot and replay the same 5 steps.
    clone = nn.Linear(4, 1)
    clone.load_state_dict(saved_weights)
    restored = factory(clone.parameters())
    restored.load_state_dict(saved_optim)
    take_steps(clone, restored, X, y, 5)

    for (name, a), (_, b) in zip(layer.named_parameters(),
                                 clone.named_parameters()):
        np.testing.assert_array_equal(a.data, b.data, err_msg=name)


def test_state_dict_is_a_snapshot():
    """Further steps must not mutate a previously captured state dict."""
    X, y = make_problem()
    layer = nn.Linear(4, 1)
    optimizer = Adam(layer.parameters(), lr=0.05)
    take_steps(layer, optimizer, X, y, 3)
    state = optimizer.state_dict()
    moments_before = [m.copy() for m in state["first_moment"]]
    take_steps(layer, optimizer, X, y, 3)
    for captured, original in zip(state["first_moment"], moments_before):
        np.testing.assert_array_equal(captured, original)
    assert state["step_count"] == 3


def test_adam_buffer_shape_mismatch_rejected():
    p_small = Parameter(np.zeros(2, dtype=np.float32))
    p_large = Parameter(np.zeros(3, dtype=np.float32))
    donor = Adam([p_small], lr=0.1)
    recipient = Adam([p_large], lr=0.1)
    with pytest.raises(ValueError, match="shape"):
        recipient.load_state_dict(donor.state_dict())


def test_buffer_count_mismatch_rejected():
    params = [Parameter(np.zeros(2, dtype=np.float32)) for _ in range(2)]
    donor = SGD(params, lr=0.1, momentum=0.9)
    recipient = SGD(params[:1], lr=0.1, momentum=0.9)
    with pytest.raises(ValueError, match="buffers"):
        recipient.load_state_dict(donor.state_dict())


def test_missing_lr_rejected():
    optimizer = SGD([Parameter(np.zeros(1, dtype=np.float32))], lr=0.1)
    with pytest.raises(KeyError):
        optimizer.load_state_dict({"weight_decay": 0.0})


class TestSchedulerState:
    def test_warmup_linear_decay_roundtrip(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        optimizer = SGD([param], lr=0.1)
        scheduler = WarmupLinearDecay(optimizer, warmup_steps=3, total_steps=10)
        for _ in range(4):
            scheduler.step()
        state = scheduler.state_dict()
        lr_at_save = optimizer.lr

        clone_optimizer = SGD([param], lr=lr_at_save)
        clone = WarmupLinearDecay(clone_optimizer, warmup_steps=1, total_steps=2)
        clone.load_state_dict(state)
        expected = [scheduler.step() for _ in range(4)]
        actual = [clone.step() for _ in range(4)]
        assert actual == pytest.approx(expected)

    def test_warmup_linear_decay_load_recomputes_lr(self):
        """Regression: load_state_dict restored the schedule position but
        left the attached optimizer at its construction-time rate, so the
        first resumed epoch trained at the wrong LR."""
        param = Parameter(np.zeros(1, dtype=np.float32))
        optimizer = SGD([param], lr=0.1)
        scheduler = WarmupLinearDecay(optimizer, warmup_steps=3, total_steps=10)
        for _ in range(5):
            scheduler.step()
        state = scheduler.state_dict()

        # The resumed optimizer is rebuilt from config with the *base* rate,
        # as the trainer does, not the mid-schedule rate at save time.
        clone_optimizer = SGD([param], lr=0.1)
        clone = WarmupLinearDecay(clone_optimizer, warmup_steps=3, total_steps=10)
        clone.load_state_dict(state)
        assert clone_optimizer.lr == pytest.approx(optimizer.lr)

    def test_warmup_linear_decay_load_at_zero_keeps_fresh_lr(self):
        """A position-0 snapshot must behave like a fresh schedule: the
        optimizer keeps its construction rate until the first step()."""
        param = Parameter(np.zeros(1, dtype=np.float32))
        optimizer = SGD([param], lr=0.1)
        scheduler = WarmupLinearDecay(optimizer, warmup_steps=3, total_steps=10)
        state = scheduler.state_dict()

        clone_optimizer = SGD([param], lr=0.1)
        clone = WarmupLinearDecay(clone_optimizer, warmup_steps=3, total_steps=10)
        clone.load_state_dict(state)
        assert clone_optimizer.lr == pytest.approx(0.1)

    def test_exponential_decay_roundtrip(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        optimizer = SGD([param], lr=0.1)
        scheduler = ExponentialDecay(optimizer, gamma=0.5, min_lr=1e-4)
        scheduler.step()
        state = scheduler.state_dict()
        clone_optimizer = SGD([param], lr=optimizer.lr)
        clone = ExponentialDecay(clone_optimizer, gamma=0.9)
        clone.load_state_dict(state)
        assert clone.step() == pytest.approx(scheduler.step())

    def test_constant_lr_state_empty(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        scheduler = ConstantLR(SGD([param], lr=0.1))
        assert scheduler.state_dict() == {}
        scheduler.load_state_dict({})
        assert scheduler.step() == 0.1
