"""The benchmark harness configuration (presets, emit)."""

import os

import pytest

from benchmarks import conftest as bench_conftest


class TestPresets:
    def test_all_presets_valid(self):
        for name, preset in bench_conftest.PRESETS.items():
            assert 0 < preset["scale"] <= 1.0
            assert preset["config"]["epochs"] >= 1

    def test_default_preset(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH", raising=False)
        assert bench_conftest.preset_name() == "standard"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH", "smoke")
        assert bench_conftest.preset_name() == "smoke"

    def test_invalid_preset_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH", "ludicrous")
        with pytest.raises(KeyError):
            bench_conftest.preset_name()

    def test_emit_prints_banner(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH", "smoke")
        bench_conftest.emit("Table X", "body text")
        out = capsys.readouterr().out
        assert "Table X" in out
        assert "body text" in out
        assert "REPRO_BENCH=smoke" in out
