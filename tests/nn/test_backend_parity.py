"""Forward parity of every ``repro.nn`` layer across compute backends.

For each layer the same seeded construction and the same input data run
once under ``use_backend("float64")`` and once under
``use_backend("float32")``; outputs must agree to 1e-5.  This pins down
two properties at once: parameter initialisation draws identical values
under every backend (only the storage dtype differs), and no layer's
forward arithmetic hides a precision-sensitive step that reduced
precision would silently distort.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, use_backend
from repro.utils import set_seed

ATOL = 1e-5


def build_linear(rng):
    return nn.Linear(6, 4), Tensor(rng.normal(size=(3, 6)))


def build_linear_bank(rng):
    return nn.LinearBank(3, 5, 4), Tensor(rng.normal(size=(3, 2, 5)))


def build_embedding(rng):
    layer = nn.Embedding(9, 4, padding_idx=0)
    return layer, np.array([[1, 0, 3], [2, 8, 5]])


def build_multi_hot_embedding(rng):
    multi_hot = (rng.random((7, 4)) < 0.5).astype(np.float64)
    layer = nn.MultiHotEmbedding(multi_hot, dim=5)
    return layer, np.array([[1, 0, 3], [2, 6, 5]])


def build_layer_norm(rng):
    return nn.LayerNorm(5), Tensor(rng.normal(size=(4, 5)))


def build_mlp(rng):
    return nn.MLP([5, 7, 3], dropout=0.0), Tensor(rng.normal(size=(3, 5)))


def build_concept_mlp_bank(rng):
    return nn.ConceptMLPBank(3, 4, 3, hidden=5), Tensor(rng.normal(size=(2, 4)))


def build_attention(rng):
    layer = nn.MultiHeadSelfAttention(8, num_heads=2, dropout=0.0, causal=True)
    return layer, Tensor(rng.normal(size=(2, 4, 8)))


def build_transformer_block(rng):
    layer = nn.TransformerEncoderLayer(8, num_heads=2, dropout=0.0)
    return layer, Tensor(rng.normal(size=(2, 3, 8)))


def build_transformer_encoder(rng):
    layer = nn.TransformerEncoder(8, num_heads=2, num_layers=2, dropout=0.0)
    return layer, Tensor(rng.normal(size=(1, 4, 8)))


def build_ffn(rng):
    layer = nn.PositionwiseFeedForward(6, hidden=12, dropout=0.0)
    return layer, Tensor(rng.normal(size=(2, 3, 6)))


def build_gru(rng):
    return nn.GRU(4, 3), Tensor(rng.normal(size=(2, 5, 4)))


def build_gru_cell(rng):
    layer = nn.GRUCell(4, 3)
    x = Tensor(rng.normal(size=(2, 4)))
    h = Tensor(np.zeros((2, 3)))
    return layer, (x, h)


def build_horizontal_conv(rng):
    layer = nn.HorizontalConv(length=5, dim=4, heights=(1, 2), num_filters=2)
    return layer, Tensor(rng.normal(size=(2, 5, 4)))


def build_vertical_conv(rng):
    layer = nn.VerticalConv(length=5, dim=4, num_filters=2)
    return layer, Tensor(rng.normal(size=(2, 5, 4)))


def build_gcn(rng):
    adjacency = (rng.random((5, 5)) < 0.4).astype(np.float64)
    adjacency = np.maximum(adjacency, adjacency.T)
    np.fill_diagonal(adjacency, 0)
    return nn.GCN(adjacency, dim=3, num_layers=2), Tensor(rng.normal(size=(5, 3)))


def build_learned_adjacency_gcn(rng):
    layer = nn.LearnedAdjacencyGCN(4, dim=3, num_layers=1)
    return layer, Tensor(rng.normal(size=(4, 3)))


def build_relu(rng):
    return nn.ReLU(), Tensor(rng.normal(size=(3, 4)))


def build_gelu(rng):
    return nn.GELU(), Tensor(rng.normal(size=(3, 4)))


def build_sigmoid(rng):
    return nn.Sigmoid(), Tensor(rng.normal(size=(3, 4)))


def build_tanh(rng):
    return nn.Tanh(), Tensor(rng.normal(size=(3, 4)))


def build_dropout_eval(rng):
    layer = nn.Dropout(0.5)
    layer.eval()
    return layer, Tensor(rng.normal(size=(3, 4)))


BUILDERS = {
    "linear": build_linear,
    "linear_bank": build_linear_bank,
    "embedding": build_embedding,
    "multi_hot_embedding": build_multi_hot_embedding,
    "layer_norm": build_layer_norm,
    "mlp": build_mlp,
    "concept_mlp_bank": build_concept_mlp_bank,
    "attention": build_attention,
    "transformer_block": build_transformer_block,
    "transformer_encoder": build_transformer_encoder,
    "ffn": build_ffn,
    "gru": build_gru,
    "gru_cell": build_gru_cell,
    "horizontal_conv": build_horizontal_conv,
    "vertical_conv": build_vertical_conv,
    "gcn": build_gcn,
    "learned_adjacency_gcn": build_learned_adjacency_gcn,
    "relu": build_relu,
    "gelu": build_gelu,
    "sigmoid": build_sigmoid,
    "tanh": build_tanh,
    "dropout_eval": build_dropout_eval,
}


def _forward(name: str, backend: str) -> np.ndarray:
    set_seed(1234)
    rng = np.random.default_rng(99)
    with use_backend(backend):
        layer, inputs = BUILDERS[name](rng)
        layer.eval()
        if not isinstance(inputs, tuple):
            inputs = (inputs,)
        out = layer(*inputs)
    return np.asarray(out.data, dtype=np.float64)


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_forward_parity_float64_vs_float32(name):
    full = _forward(name, "float64")
    reduced = _forward(name, "float32")
    assert reduced.shape == full.shape
    np.testing.assert_allclose(reduced, full, atol=ATOL, rtol=0,
                               err_msg=f"{name}: float32 backend diverged")


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_forward_parity_default_vs_float32(name):
    # The bit-compatible default and the strict float32 backend agree on
    # the (float32-native) layer stack.
    default = _forward(name, "numpy")
    reduced = _forward(name, "float32")
    np.testing.assert_allclose(reduced, default, atol=ATOL, rtol=0)
