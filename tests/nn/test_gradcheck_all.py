"""Parametrized numeric gradient sweep over every ``repro.nn`` layer.

One matrix: every layer the model zoo uses (Linear, Embedding, LayerNorm,
Dropout in eval mode, multi-head attention, a full transformer block, the
GRU, the Caser convolutions, the GCN stack, MLPs, and the Gumbel path)
gradchecked in float64 under **both** kernel dispatch modes — fused
(:mod:`repro.tensor.fused`) and composed (the ``repro.tensor.functional``
reference) — so a backward regression in either path fails loudly.

The straight-through ``gumbel_top_k`` is the one place numeric
differentiation is *invalid*: its forward value is the hard multi-hot
vector, so the finite-difference gradient is zero almost everywhere while
the analytic gradient is (by design) that of the Gumbel-Softmax
relaxation.  The sweep therefore gradchecks the relaxation
(``gumbel_softmax(noise=False)``) and separately asserts the
straight-through estimator returns *exactly* the relaxation's analytic
gradient.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, fused, gradcheck
from repro.utils import set_seed


def _promote(module: nn.Module) -> nn.Module:
    """Cast every parameter (and any GCN adjacency buffer) to float64."""
    for _, param in module.named_parameters():
        param.data = param.data.astype(np.float64)
    stack = [module]
    while stack:
        current = stack.pop()
        adjacency = getattr(current, "adjacency", None)
        if isinstance(adjacency, Tensor) and not adjacency.requires_grad:
            current.adjacency = Tensor(adjacency.data.astype(np.float64))
        stack.extend(current._modules.values())
    return module


def t64(shape, rng, scale: float = 1.0) -> Tensor:
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True,
                  dtype=np.float64)


# ----------------------------------------------------------------------
# Case builders: each returns (func, inputs) for gradcheck
# ----------------------------------------------------------------------
def case_linear(rng):
    layer = _promote(nn.Linear(5, 3))
    x = t64((4, 5), rng)
    return lambda x: (layer(x) ** 2).sum(), [x]


def case_embedding(rng):
    # Indices are not differentiable; the check runs w.r.t. the table, and
    # the padding row (index 0) must stay at zero gradient.
    layer = _promote(nn.Embedding(7, 4, padding_idx=0))
    indices = np.array([[1, 0, 3], [2, 2, 6]])
    return lambda weight: (layer(indices) ** 2).sum(), [layer.weight]


def case_layer_norm(rng):
    layer = _promote(nn.LayerNorm(6))
    x = t64((3, 6), rng)
    return lambda x, g, b: (layer(x) ** 2).sum(), [x, layer.gamma, layer.beta]


def case_dropout_eval(rng):
    # In eval mode dropout must be the identity with a pass-through gradient.
    layer = nn.Dropout(0.5)
    layer.eval()
    x = t64((4, 5), rng)
    return lambda x: (layer(x) ** 2).sum(), [x]


def case_attention_causal(rng):
    layer = _promote(nn.MultiHeadSelfAttention(8, num_heads=2, dropout=0.0,
                                               causal=True))
    layer.eval()
    x = t64((2, 4, 8), rng)
    return lambda x: (layer(x) ** 2).sum(), [x]


def case_attention_padded(rng):
    layer = _promote(nn.MultiHeadSelfAttention(8, num_heads=2, dropout=0.0,
                                               causal=True))
    layer.eval()
    x = t64((2, 4, 8), rng)
    padding = np.array([[True, True, False, False],
                        [False, False, False, False]])
    return (lambda x: (layer(x, key_padding_mask=padding) ** 2).sum(), [x])


def case_transformer_block(rng):
    layer = _promote(nn.TransformerEncoderLayer(8, num_heads=2, dropout=0.0))
    layer.eval()
    x = t64((1, 3, 8), rng)
    return lambda x: (layer(x) ** 2).sum(), [x]


def case_gru(rng):
    layer = _promote(nn.GRU(4, 3))
    x = t64((2, 3, 4), rng)
    padding = np.array([[True, False, False], [False, False, False]])
    return (lambda x: (layer(x, padding_mask=padding) ** 2).sum(), [x])


def case_caser_horizontal(rng):
    layer = _promote(nn.HorizontalConv(length=5, dim=4, heights=(1, 2),
                                       num_filters=2))
    x = t64((2, 5, 4), rng)
    return lambda x: (layer(x) ** 2).sum(), [x]


def case_caser_vertical(rng):
    layer = _promote(nn.VerticalConv(length=5, dim=4, num_filters=2))
    x = t64((2, 5, 4), rng)
    return lambda x: (layer(x) ** 2).sum(), [x]


def case_gcn(rng):
    adjacency = (rng.random((5, 5)) < 0.4).astype(np.float32)
    adjacency = np.maximum(adjacency, adjacency.T)
    np.fill_diagonal(adjacency, 0)
    stack = _promote(nn.GCN(adjacency, dim=3, num_layers=2))
    x = t64((5, 3), rng)
    return lambda x: (stack(x) ** 2).sum(), [x]


def case_mlp(rng):
    mlp = _promote(nn.MLP([4, 6, 3], dropout=0.0))
    x = t64((3, 4), rng)
    return lambda x: (mlp(x) ** 2).sum(), [x]


def case_concept_mlp_bank(rng):
    bank = _promote(nn.ConceptMLPBank(3, 4, 3, hidden=5))
    x = t64((2, 4), rng)
    return lambda x: (bank(x) ** 2).sum(), [x]


def case_gumbel_relaxation(rng):
    # The differentiable half of the straight-through estimator (Eq. 5).
    x = t64((2, 3, 6), rng, scale=0.5)
    return (lambda x: (nn.gumbel_softmax(x, tau=0.7, noise=False) ** 2).sum(),
            [x])


CASES = {
    "linear": case_linear,
    "embedding": case_embedding,
    "layer_norm": case_layer_norm,
    "dropout_eval": case_dropout_eval,
    "attention_causal": case_attention_causal,
    "attention_padded": case_attention_padded,
    "transformer_block": case_transformer_block,
    "gru": case_gru,
    "caser_horizontal": case_caser_horizontal,
    "caser_vertical": case_caser_vertical,
    "gcn": case_gcn,
    "mlp": case_mlp,
    "concept_mlp_bank": case_concept_mlp_bank,
    "gumbel_relaxation": case_gumbel_relaxation,
}

#: Composite layers go through more ops, so tolerances are a bit looser
#: than the per-op defaults (matching tests/nn/test_layer_gradients.py).
TOLERANCES = {
    "attention_causal": dict(atol=5e-4, rtol=5e-3),
    "attention_padded": dict(atol=5e-4, rtol=5e-3),
    "transformer_block": dict(atol=1e-3, rtol=1e-2),
    "gru": dict(atol=5e-4),
    "gcn": dict(atol=5e-4),
    "layer_norm": dict(atol=5e-4),
    "concept_mlp_bank": dict(atol=5e-4),
}


@pytest.mark.parametrize("dispatch", ["fused", "composed"])
@pytest.mark.parametrize("case", sorted(CASES))
class TestGradcheckMatrix:
    def test_layer(self, case, dispatch, rng):
        set_seed(0)
        func, inputs = CASES[case](rng)
        tolerance = TOLERANCES.get(case, {})
        with fused.use_fused(dispatch == "fused"):
            assert gradcheck(func, inputs, **tolerance)


class TestEmbeddingPaddingRow:
    def test_padding_row_gradient_is_zero(self, rng):
        set_seed(0)
        layer = _promote(nn.Embedding(6, 3, padding_idx=0))
        indices = np.array([[0, 1, 0, 2]])
        (layer(indices) ** 2).sum().backward()
        assert np.allclose(layer.weight.grad[0], 0.0)
        assert not np.allclose(layer.weight.grad[1], 0.0)


class TestStraightThroughGumbel:
    """Numeric differentiation is invalid for the hard forward; check the
    estimator's contract directly instead."""

    @pytest.mark.parametrize("dispatch", ["fused", "composed"])
    def test_forward_is_hard_and_grad_is_relaxation(self, dispatch, rng):
        set_seed(0)
        logits = rng.normal(size=(2, 4, 6)).astype(np.float64)
        with fused.use_fused(dispatch == "fused"):
            hard_input = Tensor(logits.copy(), requires_grad=True)
            hard_output = nn.gumbel_top_k(hard_input, k=2, tau=0.7, noise=False)
            # Forward: exact multi-hot with exactly k active entries.
            assert set(np.unique(hard_output.data)) <= {0.0, 1.0}
            assert np.all(hard_output.data.sum(axis=-1) == 2)
            # Backward: identical to the relaxation's analytic gradient under
            # the same downstream function.
            weights = rng.normal(size=hard_output.shape)
            (hard_output * Tensor(weights)).sum().backward()
            soft_input = Tensor(logits.copy(), requires_grad=True)
            soft_output = nn.gumbel_softmax(soft_input, tau=0.7, noise=False)
            (soft_output * Tensor(weights)).sum().backward()
        np.testing.assert_array_equal(hard_input.grad, soft_input.grad)
