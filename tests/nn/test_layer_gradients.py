"""End-to-end gradient checks of composite layers in float64.

These catch subtle backward bugs that unit tests of individual ops miss
(e.g. broadcasting inside LayerNorm, mask handling inside attention).
"""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, gradcheck
from repro.utils import set_seed


def _promote(module: nn.Module) -> nn.Module:
    """Cast every parameter of ``module`` to float64 in place."""
    for _, param in module.named_parameters():
        param.data = param.data.astype(np.float64)
    return module


def t64(shape, rng):
    return Tensor(rng.normal(size=shape), requires_grad=True, dtype=np.float64)


class TestCompositeGradients:
    def test_linear(self, rng):
        set_seed(0)
        layer = _promote(nn.Linear(5, 3))
        x = t64((4, 5), rng)
        assert gradcheck(lambda x: (layer(x) ** 2).sum(), [x])

    def test_layer_norm(self, rng):
        set_seed(0)
        layer = _promote(nn.LayerNorm(6))
        x = t64((3, 6), rng)
        assert gradcheck(lambda x: (layer(x) ** 2).sum(), [x], atol=5e-4)

    def test_layer_norm_parameters(self, rng):
        set_seed(0)
        layer = _promote(nn.LayerNorm(4))
        x = Tensor(rng.normal(size=(2, 4)), dtype=np.float64)
        assert gradcheck(lambda g, b: ((x - x.mean(axis=-1, keepdims=True))
                                       / ((x - x.mean(axis=-1, keepdims=True)) ** 2)
                                       .mean(axis=-1, keepdims=True).sqrt()
                                       * g + b).sum(),
                         [layer.gamma, layer.beta])

    def test_attention(self, rng):
        set_seed(0)
        attention = _promote(nn.MultiHeadSelfAttention(8, num_heads=2,
                                                       dropout=0.0, causal=True))
        attention.eval()
        x = t64((2, 4, 8), rng)
        assert gradcheck(lambda x: (attention(x) ** 2).sum(), [x],
                         atol=5e-4, rtol=5e-3)

    def test_attention_with_padding(self, rng):
        set_seed(0)
        attention = _promote(nn.MultiHeadSelfAttention(8, num_heads=2,
                                                       dropout=0.0, causal=False))
        attention.eval()
        x = t64((1, 4, 8), rng)
        padding = np.array([[True, False, False, False]])
        assert gradcheck(
            lambda x: (attention(x, key_padding_mask=padding) ** 2).sum(),
            [x], atol=5e-4, rtol=5e-3)

    def test_gru_cell(self, rng):
        set_seed(0)
        cell = _promote(nn.GRUCell(4, 3))
        x = t64((2, 4), rng)
        h = t64((2, 3), rng)
        assert gradcheck(lambda x, h: (cell(x, h) ** 2).sum(), [x, h],
                         atol=5e-4)

    def test_gcn_layer(self, rng):
        set_seed(0)
        adjacency = (rng.random((5, 5)) < 0.4).astype(np.float32)
        adjacency = np.maximum(adjacency, adjacency.T)
        np.fill_diagonal(adjacency, 0)
        layer = _promote(nn.GCNLayer(adjacency, 3, 3))
        layer.adjacency = Tensor(layer.adjacency.data.astype(np.float64))
        x = t64((5, 3), rng)
        assert gradcheck(lambda x: (layer(x) ** 2).sum(), [x], atol=5e-4)

    def test_concept_bank(self, rng):
        set_seed(0)
        bank = _promote(nn.ConceptMLPBank(4, 5, 3, hidden=6))
        x = t64((2, 5), rng)
        assert gradcheck(lambda x: (bank(x) ** 2).sum(), [x], atol=5e-4)

    def test_transformer_layer(self, rng):
        set_seed(0)
        layer = _promote(nn.TransformerEncoderLayer(8, num_heads=2, dropout=0.0))
        layer.eval()
        x = t64((1, 3, 8), rng)
        assert gradcheck(lambda x: (layer(x) ** 2).sum(), [x],
                         atol=1e-3, rtol=1e-2)
