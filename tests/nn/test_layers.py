"""Linear, LinearBank, Embedding, LayerNorm, Dropout, activations, MLP."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor
from repro.utils import set_seed


def randn(shape, requires_grad=False):
    data = np.random.default_rng(0).normal(size=shape).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)


class TestLinear:
    def test_shape(self):
        layer = nn.Linear(5, 3)
        assert layer(randn((7, 5))).shape == (7, 3)

    def test_no_bias(self):
        layer = nn.Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_matches_manual(self):
        layer = nn.Linear(4, 2)
        x = randn((3, 4))
        expected = x.data @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(x).data, expected, rtol=1e-5)

    def test_repr(self):
        assert "Linear(4, 2" in repr(nn.Linear(4, 2))


class TestLinearBank:
    def test_broadcast_shape(self):
        bank = nn.LinearBank(6, 5, 3)
        out = bank(randn((2, 4, 5)))
        assert out.shape == (2, 4, 6, 3)

    def test_banks_are_independent(self):
        bank = nn.LinearBank(3, 4, 2, bias=False)
        x = randn((1, 4))
        out = bank(x).data[0]  # (3, 2)
        for k in range(3):
            expected = x.data[0] @ bank.weight.data[k]
            np.testing.assert_allclose(out[k], expected, rtol=1e-5)

    def test_per_bank_shape(self):
        bank = nn.LinearBank(6, 5, 3)
        out = bank.forward_per_bank(randn((2, 4, 6, 5)))
        assert out.shape == (2, 4, 6, 3)

    def test_per_bank_uses_own_slice(self):
        bank = nn.LinearBank(2, 3, 2, bias=False)
        z = randn((1, 2, 3))
        out = bank.forward_per_bank(z).data[0]
        for k in range(2):
            expected = z.data[0, k] @ bank.weight.data[k]
            np.testing.assert_allclose(out[k], expected, rtol=1e-5)


class TestEmbedding:
    def test_lookup(self):
        table = nn.Embedding(10, 4)
        out = table(np.array([[1, 2], [3, 0]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out.data[0, 0], table.weight.data[1])

    def test_padding_row_zero_initialised(self):
        table = nn.Embedding(10, 4, padding_idx=0)
        np.testing.assert_array_equal(table.weight.data[0], np.zeros(4))

    def test_gradient_scattered(self):
        table = nn.Embedding(5, 3)
        out = table(np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(table.weight.grad[1], 2.0 * np.ones(3))
        np.testing.assert_allclose(table.weight.grad[2], np.ones(3))
        np.testing.assert_allclose(table.weight.grad[0], np.zeros(3))

    def test_tensor_index_accepted(self):
        table = nn.Embedding(5, 3)
        out = table(Tensor(np.array([0, 4])))
        assert out.shape == (2, 3)


class TestMultiHotEmbedding:
    def test_sums_selected_rows(self):
        multi_hot = np.array([[0, 0, 0], [1, 1, 0], [0, 0, 1]], dtype=np.float32)
        layer = nn.MultiHotEmbedding(multi_hot, dim=4)
        out = layer(np.array([1, 2, 0]))
        expected_row1 = layer.weight.data[0] + layer.weight.data[1]
        np.testing.assert_allclose(out.data[0], expected_row1, rtol=1e-5)
        np.testing.assert_allclose(out.data[2], np.zeros(4), atol=1e-7)


class TestLayerNorm:
    def test_normalises_last_axis(self):
        layer = nn.LayerNorm(8)
        out = layer(randn((4, 8)) * 10.0 + 3.0).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_trainable(self):
        layer = nn.LayerNorm(4)
        assert len(layer.parameters()) == 2


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = randn((10, 10))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_zero_probability_is_identity(self):
        layer = nn.Dropout(0.0)
        x = randn((10, 10))
        np.testing.assert_array_equal(layer(x).data, x.data)

    def test_training_zeroes_and_scales(self):
        set_seed(0)
        layer = nn.Dropout(0.5)
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = layer(x).data
        assert (out == 0).mean() == pytest.approx(0.5, abs=0.05)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0, rtol=1e-5)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1)


class TestActivations:
    def test_relu(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0]))).data
        np.testing.assert_array_equal(out, [0.0, 2.0])

    def test_sigmoid_range(self):
        out = nn.Sigmoid()(randn((50,))).data
        assert np.all((out > 0) & (out < 1))

    def test_tanh_range(self):
        out = nn.Tanh()(randn((50,))).data
        assert np.all((out > -1) & (out < 1))

    def test_gelu_close_to_relu_for_large_inputs(self):
        x = Tensor(np.array([10.0, -10.0]))
        out = nn.GELU()(x).data
        np.testing.assert_allclose(out, [10.0, 0.0], atol=1e-3)


class TestMLP:
    def test_dims_validation(self):
        with pytest.raises(ValueError):
            nn.MLP([4])

    def test_forward_shape(self):
        mlp = nn.MLP([6, 8, 3])
        assert mlp(randn((5, 6))).shape == (5, 3)

    def test_hidden_layers_have_relu(self):
        mlp = nn.MLP([2, 2, 2])
        kinds = [type(layer).__name__ for layer in mlp.layers]
        assert kinds == ["Linear", "ReLU", "Linear"]


class TestConceptMLPBank:
    def test_single_layer(self):
        bank = nn.ConceptMLPBank(5, 8, 3)
        assert bank(randn((2, 8))).shape == (2, 5, 3)

    def test_two_layer(self):
        bank = nn.ConceptMLPBank(5, 8, 3, hidden=6)
        assert bank(randn((2, 8))).shape == (2, 5, 3)
        assert bank.forward_per_bank(randn((2, 5, 8))).shape == (2, 5, 3)
