"""Parameter-count accounting for the model zoo (guards against silent
architecture regressions)."""

import pytest

from repro import nn
from repro.core import ISRec, ISRecConfig


class TestLayerCounts:
    def test_linear(self):
        assert nn.Linear(10, 4).num_parameters() == 10 * 4 + 4

    def test_linear_bank(self):
        bank = nn.LinearBank(7, 10, 4)
        assert bank.num_parameters() == 7 * (10 * 4) + 7 * 4

    def test_gru_cell(self):
        cell = nn.GRUCell(8, 6)
        assert cell.num_parameters() == 8 * 18 + 6 * 18 + 18

    def test_attention(self):
        attention = nn.MultiHeadSelfAttention(16, num_heads=2)
        # Q, K, V, output projections: 4 x (16*16 + 16).
        assert attention.num_parameters() == 4 * (16 * 16 + 16)

    def test_layer_norm(self):
        assert nn.LayerNorm(32).num_parameters() == 64

    def test_gcn_layer(self):
        import numpy as np

        layer = nn.GCNLayer(np.eye(5), 6, 4)
        assert layer.num_parameters() == 6 * 4 + 4


class TestISRecBudget:
    def test_parameter_budget_formula(self, tiny_dataset):
        """ISRec's parameter count decomposes into its named pieces."""
        dim, intent_dim = 16, 4
        model = ISRec.from_dataset(
            tiny_dataset, max_len=8,
            config=ISRecConfig(dim=dim, intent_dim=intent_dim, gcn_layers=2))
        V = tiny_dataset.num_items + 1
        K = tiny_dataset.num_concepts
        T = 8
        embeddings = V * dim + K * dim + T * dim
        attention_block = 4 * (dim * dim + dim)
        ffn = 2 * (dim * dim + dim)
        norms = 2 * 2 * dim
        transformer = 2 * (attention_block + ffn + norms)  # two layers
        feature_bank = K * (dim * intent_dim) + K * intent_dim
        gcn = 2 * (intent_dim * intent_dim + intent_dim)
        decoder = K * (intent_dim * dim) + K * dim
        expected = embeddings + transformer + feature_bank + gcn + decoder
        assert model.num_parameters() == expected

    def test_shared_mlp_is_much_smaller(self, tiny_dataset):
        full = ISRec.from_dataset(tiny_dataset, max_len=8,
                                  config=ISRecConfig(dim=16))
        shared = ISRec.from_dataset(tiny_dataset, max_len=8,
                                    config=ISRecConfig(dim=16, shared_mlp=True))
        assert shared.num_parameters() < full.num_parameters()

    def test_learned_graph_adds_k_squared(self, tiny_dataset):
        fixed = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        learned = ISRec.from_dataset(tiny_dataset, max_len=8,
                                     config=ISRecConfig(dim=16,
                                                        graph_mode="learned"))
        K = tiny_dataset.num_concepts
        assert learned.num_parameters() == fixed.num_parameters() + K * K
