"""Numerical fidelity of the graph layers to Eq. (10)."""

import numpy as np
import pytest

from repro import nn
from repro.nn.graph import normalized_adjacency
from repro.tensor import Tensor
from repro.utils import set_seed


class TestEquationTen:
    def test_layer_matches_manual_formula(self, rng):
        set_seed(0)
        adjacency = np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]], dtype=np.float32)
        layer = nn.GCNLayer(adjacency, 4, 4, activation=True)
        x = rng.normal(size=(3, 4)).astype(np.float32)

        a_hat = adjacency + np.eye(3, dtype=np.float32)
        degree = a_hat.sum(axis=1)
        normalizer = np.diag(degree ** -0.5)
        manual = normalizer @ a_hat @ normalizer @ x @ layer.weight.data \
            + layer.bias.data
        manual = np.maximum(manual, 0.0)

        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out, manual, rtol=1e-5, atol=1e-6)

    def test_normalization_row_sums_bounded(self, rng):
        adjacency = (rng.random((10, 10)) < 0.3).astype(np.float32)
        adjacency = np.maximum(adjacency, adjacency.T)
        np.fill_diagonal(adjacency, 0)
        norm = normalized_adjacency(adjacency)
        # Symmetric normalisation bounds the spectral radius by 1.
        eigenvalues = np.linalg.eigvalsh(norm.astype(np.float64))
        assert eigenvalues.max() <= 1.0 + 1e-6

    def test_learned_adjacency_matches_fixed_at_saturation(self, rng):
        """With saturated logits the learned graph reduces to the prior."""
        set_seed(0)
        prior = np.array([[0, 1], [1, 0]], dtype=np.float32)
        learned = nn.LearnedAdjacencyGCN(2, 3, num_layers=1,
                                         init_adjacency=prior)
        learned.edge_logits.data[...] = np.where(prior > 0, 50.0, -50.0)
        dense = learned.adjacency().data
        np.testing.assert_allclose(dense, prior, atol=1e-6)

    def test_identity_graph_is_pure_mlp(self, rng):
        """With no edges, GCN propagation reduces to a per-node linear map."""
        set_seed(0)
        layer = nn.GCNLayer(np.zeros((4, 4), dtype=np.float32), 3, 3,
                            activation=False)
        x = rng.normal(size=(4, 3)).astype(np.float32)
        out = layer(Tensor(x)).data
        manual = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out, manual, rtol=1e-5, atol=1e-6)
