"""Attention and transformer blocks: causality, padding, shapes, gradients."""

import numpy as np
import pytest

from repro import nn
from repro.nn.attention import causal_mask
from repro.tensor import Tensor


def randn(shape, requires_grad=False, seed=0):
    data = np.random.default_rng(seed).normal(size=shape).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)


class TestCausalMask:
    def test_upper_triangle_forbidden(self):
        mask = causal_mask(4)
        assert mask[0, 1] and mask[0, 3]
        assert not mask[1, 0] and not mask[2, 2]

    def test_diagonal_allowed(self):
        assert not causal_mask(5).diagonal().any()


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attention = nn.MultiHeadSelfAttention(8, num_heads=2, dropout=0.0)
        assert attention(randn((3, 5, 8))).shape == (3, 5, 8)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(7, num_heads=2)

    def test_causality(self):
        """Changing a future item must not change earlier outputs."""
        attention = nn.MultiHeadSelfAttention(8, num_heads=2, dropout=0.0, causal=True)
        attention.eval()
        x = randn((1, 6, 8))
        base = attention(x).data.copy()
        perturbed = x.data.copy()
        perturbed[0, 5] += 10.0
        out = attention(Tensor(perturbed)).data
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-5)
        assert not np.allclose(out[0, 5], base[0, 5], atol=1e-3)

    def test_bidirectional_sees_future(self):
        attention = nn.MultiHeadSelfAttention(8, num_heads=2, dropout=0.0, causal=False)
        attention.eval()
        x = randn((1, 6, 8))
        base = attention(x).data.copy()
        perturbed = x.data.copy()
        perturbed[0, 5] += 10.0
        out = attention(Tensor(perturbed)).data
        assert not np.allclose(out[0, 0], base[0, 0], atol=1e-3)

    def test_padding_not_attended(self):
        """Changing a padded position must not change real outputs."""
        attention = nn.MultiHeadSelfAttention(8, num_heads=2, dropout=0.0, causal=False)
        attention.eval()
        x = randn((1, 5, 8))
        padding = np.array([[True, True, False, False, False]])
        base = attention(x, key_padding_mask=padding).data.copy()
        perturbed = x.data.copy()
        perturbed[0, 0] += 5.0
        out = attention(Tensor(perturbed), key_padding_mask=padding).data
        np.testing.assert_allclose(out[0, 2:], base[0, 2:], atol=1e-5)

    def test_fully_masked_rows_finite(self):
        """A padded query attending to nothing must stay finite."""
        attention = nn.MultiHeadSelfAttention(8, num_heads=2, dropout=0.0, causal=True)
        attention.eval()
        x = randn((1, 4, 8))
        padding = np.array([[True, True, True, False]])
        out = attention(x, key_padding_mask=padding).data
        assert np.isfinite(out).all()

    def test_gradient_flows(self):
        attention = nn.MultiHeadSelfAttention(8, num_heads=2, dropout=0.0)
        attention.eval()
        x = randn((2, 4, 8), requires_grad=True)
        attention(x).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()


class TestTransformer:
    def test_encoder_shape(self):
        encoder = nn.TransformerEncoder(8, num_layers=2, num_heads=2, dropout=0.0)
        assert encoder(randn((3, 5, 8))).shape == (3, 5, 8)

    def test_encoder_causality_end_to_end(self):
        encoder = nn.TransformerEncoder(8, num_layers=2, num_heads=2,
                                        dropout=0.0, causal=True)
        encoder.eval()
        x = randn((1, 6, 8))
        base = encoder(x).data.copy()
        perturbed = x.data.copy()
        perturbed[0, -1] += 3.0
        out = encoder(Tensor(perturbed)).data
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-4)

    def test_feed_forward_shape(self):
        ffn = nn.PositionwiseFeedForward(8, hidden=16, dropout=0.0)
        assert ffn(randn((2, 3, 8))).shape == (2, 3, 8)

    def test_layer_count_parameters(self):
        one = nn.TransformerEncoder(8, num_layers=1).num_parameters()
        two = nn.TransformerEncoder(8, num_layers=2).num_parameters()
        assert two == 2 * one
