"""Statistical properties of the Gumbel-Softmax machinery."""

import numpy as np
import pytest

from repro.nn.gumbel import gumbel_softmax, gumbel_top_k, sample_gumbel
from repro.tensor import Tensor
from repro.utils import set_seed


class TestGumbelNoise:
    def test_gumbel_moments(self):
        set_seed(0)
        draws = sample_gumbel((200_000,))
        # Gumbel(0,1): mean = Euler-Mascheroni, var = pi^2/6.
        assert draws.mean() == pytest.approx(0.5772, abs=0.02)
        assert draws.var() == pytest.approx(np.pi ** 2 / 6, rel=0.03)

    def test_argmax_frequencies_match_softmax(self):
        """The Gumbel-max trick: argmax frequencies equal softmax probs."""
        set_seed(1)
        logits = np.array([2.0, 1.0, 0.0], dtype=np.float32)
        counts = np.zeros(3)
        trials = 4000
        for _ in range(trials):
            sample = gumbel_top_k(Tensor(logits.reshape(1, 3)), k=1, tau=1.0)
            counts[np.argmax(sample.data[0])] += 1
        expected = np.exp(logits) / np.exp(logits).sum()
        np.testing.assert_allclose(counts / trials, expected, atol=0.04)


class TestTemperature:
    def test_low_tau_sharpens(self):
        set_seed(0)
        logits = Tensor(np.array([[1.0, 0.5, 0.0]], dtype=np.float32))
        hot = gumbel_softmax(logits, tau=5.0, noise=False).data
        cold = gumbel_softmax(logits, tau=0.1, noise=False).data
        assert cold.max() > hot.max()
        assert cold[0, 0] > 0.98

    def test_high_tau_flattens(self):
        logits = Tensor(np.array([[3.0, 0.0, -3.0]], dtype=np.float32))
        flat = gumbel_softmax(logits, tau=100.0, noise=False).data
        np.testing.assert_allclose(flat, 1.0 / 3.0, atol=0.05)


class TestStraightThroughGradient:
    def test_gradient_matches_soft_relaxation(self):
        """out = soft + const, so d out/d logits == d soft/d logits."""
        set_seed(0)
        logits_a = Tensor(np.random.default_rng(0).normal(size=(2, 5)).astype(np.float32),
                          requires_grad=True)
        logits_b = Tensor(logits_a.data.copy(), requires_grad=True)
        set_seed(42)
        hard = gumbel_top_k(logits_a, k=2, tau=1.0, noise=True)
        hard.sum().backward()
        set_seed(42)
        soft = gumbel_softmax(logits_b, tau=1.0, noise=True)
        soft.sum().backward()
        np.testing.assert_allclose(logits_a.grad, logits_b.grad, atol=1e-6)
