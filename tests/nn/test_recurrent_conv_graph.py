"""GRU, Caser convolutions, and GCN layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.graph import normalized_adjacency
from repro.tensor import Tensor


def randn(shape, requires_grad=False, seed=0):
    data = np.random.default_rng(seed).normal(size=shape).astype(np.float32)
    return Tensor(data, requires_grad=requires_grad)


class TestGRU:
    def test_output_shape(self):
        gru = nn.GRU(6, 4)
        assert gru(randn((3, 7, 6))).shape == (3, 7, 4)

    def test_cell_shape(self):
        cell = nn.GRUCell(6, 4)
        out = cell(randn((3, 6)), Tensor(np.zeros((3, 4), dtype=np.float32)))
        assert out.shape == (3, 4)

    def test_padding_carries_hidden_state(self):
        gru = nn.GRU(4, 3)
        x = randn((1, 5, 4))
        padding = np.array([[False, False, True, True, False]])
        out = gru(x, padding_mask=padding).data
        np.testing.assert_allclose(out[0, 1], out[0, 2], atol=1e-6)
        np.testing.assert_allclose(out[0, 2], out[0, 3], atol=1e-6)
        assert not np.allclose(out[0, 3], out[0, 4], atol=1e-4)

    def test_order_sensitivity(self):
        """A recurrent encoder must distinguish item order."""
        gru = nn.GRU(4, 3)
        x = randn((1, 4, 4))
        reversed_x = Tensor(x.data[:, ::-1].copy())
        forward = gru(x).data[0, -1]
        backward = gru(reversed_x).data[0, -1]
        assert not np.allclose(forward, backward, atol=1e-4)

    def test_gradient_through_time(self):
        gru = nn.GRU(4, 3)
        x = randn((2, 6, 4), requires_grad=True)
        gru(x).sum().backward()
        assert np.abs(x.grad[:, 0]).sum() > 0  # earliest step still receives signal


class TestConvolutions:
    def test_horizontal_shape(self):
        conv = nn.HorizontalConv(6, 8, heights=(1, 2, 3), num_filters=4)
        assert conv(randn((5, 6, 8))).shape == (5, conv.output_dim)
        assert conv.output_dim == 12

    def test_heights_capped_by_length(self):
        conv = nn.HorizontalConv(2, 8, heights=(1, 2, 5), num_filters=4)
        assert conv.heights == (1, 2)

    def test_vertical_shape(self):
        conv = nn.VerticalConv(6, 8, num_filters=2)
        assert conv(randn((5, 6, 8))).shape == (5, 16)

    def test_horizontal_gradient(self):
        conv = nn.HorizontalConv(5, 4)
        x = randn((2, 5, 4), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None


class TestGCN:
    def test_normalized_adjacency_symmetric(self):
        a = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=np.float32)
        norm = normalized_adjacency(a)
        np.testing.assert_allclose(norm, norm.T, atol=1e-6)

    def test_normalized_adjacency_rejects_non_square(self):
        with pytest.raises(ValueError):
            normalized_adjacency(np.zeros((2, 3)))

    def test_isolated_node_handled(self):
        a = np.zeros((3, 3), dtype=np.float32)
        norm = normalized_adjacency(a)  # self-loops only
        assert np.isfinite(norm).all()
        np.testing.assert_allclose(np.diag(norm), 1.0)

    def test_layer_shape(self):
        a = np.eye(5, dtype=np.float32)
        layer = nn.GCNLayer(a, 4, 6)
        assert layer(randn((5, 4))).shape == (5, 6)

    def test_batched_input(self):
        a = np.eye(5, dtype=np.float32)
        gcn = nn.GCN(a, 4, num_layers=2)
        assert gcn(randn((2, 3, 5, 4))).shape == (2, 3, 5, 4)

    def test_message_passing_spreads_information(self):
        """A feature on node 0 must reach its neighbour after one layer."""
        a = np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]], dtype=np.float32)
        layer = nn.GCNLayer(a, 2, 2, activation=False)
        x = np.zeros((3, 2), dtype=np.float32)
        x[0] = 10.0
        out = layer(Tensor(x)).data
        bias = layer(Tensor(np.zeros((3, 2), dtype=np.float32))).data
        assert np.abs(out[1] - bias[1]).sum() > 0     # neighbour updated
        np.testing.assert_allclose(out[2], bias[2], atol=1e-5)  # isolated node not

    def test_gcn_depth_validation(self):
        with pytest.raises(ValueError):
            nn.GCN(np.eye(3), 4, num_layers=0)


class TestGumbel:
    def test_hard_top_k_exact_count(self):
        scores = np.random.default_rng(0).normal(size=(7, 12))
        hard = nn.hard_top_k(scores, 4)
        np.testing.assert_array_equal(hard.sum(axis=-1), 4.0)

    def test_hard_top_k_selects_largest(self):
        scores = np.array([[1.0, 5.0, 3.0, 0.0]])
        hard = nn.hard_top_k(scores, 2)
        np.testing.assert_array_equal(hard, [[0, 1, 1, 0]])

    def test_hard_top_k_k_capped(self):
        hard = nn.hard_top_k(np.zeros((2, 3)), 10)
        np.testing.assert_array_equal(hard.sum(axis=-1), 3.0)

    def test_hard_top_k_invalid_k(self):
        with pytest.raises(ValueError):
            nn.hard_top_k(np.zeros((2, 3)), 0)

    def test_gumbel_top_k_forward_is_multi_hot(self):
        logits = randn((4, 9), requires_grad=True)
        out = nn.gumbel_top_k(logits, 3)
        values = np.unique(out.data)
        assert set(np.round(values, 5)).issubset({0.0, 1.0})
        np.testing.assert_array_equal(out.data.sum(axis=-1), 3.0)

    def test_gumbel_top_k_gradient_flows(self):
        logits = randn((4, 9), requires_grad=True)
        nn.gumbel_top_k(logits, 3).sum().backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).sum() > 0

    def test_no_noise_is_deterministic(self):
        logits = randn((2, 6))
        a = nn.gumbel_top_k(logits, 2, noise=False).data
        b = nn.gumbel_top_k(logits, 2, noise=False).data
        np.testing.assert_array_equal(a, b)

    def test_gumbel_softmax_distribution(self):
        out = nn.gumbel_softmax(randn((5, 8))).data
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-5)

    def test_temperature_must_be_positive(self):
        with pytest.raises(ValueError):
            nn.gumbel_softmax(randn((2, 3)), tau=0.0)
