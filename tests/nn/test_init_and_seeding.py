"""Initialisers and their interaction with global seeding."""

import numpy as np

from repro.nn import init
from repro.nn.linear import Linear
from repro.utils import set_seed


class TestXavier:
    def test_bounds(self):
        weights = init.xavier_uniform((64, 32))
        limit = np.sqrt(6.0 / (64 + 32))
        assert np.abs(weights).max() <= limit + 1e-6

    def test_leading_batch_dims_ignored_for_fan(self):
        banked = init.xavier_uniform((10, 8, 4))
        limit = np.sqrt(6.0 / (8 + 4))
        assert np.abs(banked).max() <= limit + 1e-6

    def test_one_dimensional(self):
        vec = init.xavier_uniform((16,))
        assert vec.shape == (16,)
        assert np.isfinite(vec).all()

    def test_dtype_is_float32(self):
        assert init.xavier_uniform((4, 4)).dtype == np.float32
        assert init.normal((4,)).dtype == np.float32


class TestNormal:
    def test_std(self):
        weights = init.normal((2000,), std=0.02)
        assert abs(weights.std() - 0.02) < 0.005
        assert abs(weights.mean()) < 0.005


class TestSeededConstruction:
    def test_same_seed_same_model(self):
        set_seed(7)
        first = Linear(8, 8).weight.data.copy()
        set_seed(7)
        second = Linear(8, 8).weight.data.copy()
        np.testing.assert_array_equal(first, second)

    def test_different_seed_different_model(self):
        set_seed(7)
        first = Linear(8, 8).weight.data.copy()
        set_seed(8)
        second = Linear(8, 8).weight.data.copy()
        assert not np.array_equal(first, second)
