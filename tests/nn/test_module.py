"""Module/Parameter bookkeeping: discovery, modes, state dicts."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.tensor import Tensor


class ToyModel(Module):
    def __init__(self):
        super().__init__()
        self.first = nn.Linear(4, 3)
        self.second = nn.Linear(3, 2)
        self.scale = Parameter(np.ones(1, dtype=np.float32))

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


class TestDiscovery:
    def test_named_parameters_dotted_paths(self):
        model = ToyModel()
        names = {name for name, _ in model.named_parameters()}
        assert "first.weight" in names
        assert "first.bias" in names
        assert "second.weight" in names
        assert "scale" in names

    def test_parameters_count(self):
        model = ToyModel()
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2 + 1

    def test_module_list_registers_children(self):
        layers = ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(layers.parameters()) == 4
        assert len(layers) == 2
        assert isinstance(layers[1], nn.Linear)

    def test_sequential_forward(self):
        model = Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        out = model(Tensor(np.zeros((5, 3), dtype=np.float32)))
        assert out.shape == (5, 2)

    def test_zero_grad_clears_all(self):
        model = ToyModel()
        out = model(Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestModes:
    def test_train_eval_recursive(self):
        model = Sequential(nn.Dropout(0.5), nn.Linear(2, 2))
        model.eval()
        assert not model.training
        assert all(not m.training for m in model.layers)
        model.train()
        assert model.training


class TestStateDict:
    def test_roundtrip(self):
        model_a = ToyModel()
        model_b = ToyModel()
        state = model_a.state_dict()
        model_b.load_state_dict(state)
        for (_, pa), (_, pb) in zip(model_a.named_parameters(),
                                    model_b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        model = ToyModel()
        state = model.state_dict()
        state["scale"][...] = 99.0
        assert model.scale.data[0] != 99.0

    def test_missing_key_raises(self):
        model = ToyModel()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = ToyModel()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = ToyModel()
        state = model.state_dict()
        state["scale"] = np.zeros(7)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestReassignment:
    def test_module_replaced_by_none_untracked(self):
        model = ToyModel()
        before = model.num_parameters()
        model.first = None
        assert model.num_parameters() < before
        assert all(not name.startswith("first.")
                   for name, _ in model.named_parameters())

    def test_parameter_replaced_by_plain_value_untracked(self):
        model = ToyModel()
        model.scale = 3.0
        assert all(name != "scale" for name, _ in model.named_parameters())

    def test_parameter_replaced_by_module(self):
        model = ToyModel()
        model.scale = nn.Linear(2, 2)
        names = [name for name, _ in model.named_parameters()]
        assert "scale.weight" in names
        assert "scale" not in names


class TestParameter:
    def test_parameter_requires_grad(self):
        assert Parameter(np.zeros(3, dtype=np.float32)).requires_grad

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)
