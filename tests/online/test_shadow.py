"""ShadowEvaluator: paired metrics, interleaving, and the promotion gate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.online import ShadowEvaluator, ShadowRegression


class StubEngine:
    """Deterministic engine double implementing the shadow protocol.

    ``ranker(user, history)`` returns the ranked item list the engine
    "recommends"; every call is recorded so tests can assert the
    interleaved query order.
    """

    def __init__(self, ranker, trace=None, name="stub"):
        self.ranker = ranker
        self.histories = {}
        self.trace = trace if trace is not None else []
        self.name = name

    def set_history(self, user, items):
        self.histories[user] = [int(item) for item in items]

    def recommend(self, user, k=10, filter_seen=True):
        self.trace.append(self.name)
        ranked = self.ranker(user, self.histories[user])[:k]
        return [(int(item), 1.0 / (position + 1))
                for position, item in enumerate(ranked)]


def perfect_for(targets):
    """An engine whose top-1 is always the example's held-out target."""
    return StubEngine(lambda user, history: [targets[user]] + [99, 98, 97])


EXAMPLES = [(0, [5, 6], 7), (1, [8, 9], 10), (2, [11, 12], 13),
            (3, [14, 15], 16)]
TARGETS = {user: target for user, _history, target in EXAMPLES}


def test_perfect_vs_blind_engines():
    evaluator = ShadowEvaluator(EXAMPLES, k=3)
    incumbent = perfect_for(TARGETS)
    candidate = StubEngine(lambda user, history: [50, 51, 52])  # never hits
    report = evaluator.evaluate(incumbent, candidate)
    assert report.examples == 4
    assert report.incumbent_hr == 1.0
    assert report.incumbent_ndcg == 1.0  # always rank 1
    assert report.candidate_hr == 0.0
    assert report.candidate_ndcg == 0.0
    assert report.hr_delta == -1.0
    assert report.ndcg_delta == -1.0


def test_ndcg_uses_log2_rank_discount():
    evaluator = ShadowEvaluator(EXAMPLES[:1], k=3)
    # Target lands at rank 3.
    rank3 = StubEngine(lambda user, history: [1, 2, TARGETS[user]])
    report = evaluator.evaluate(rank3, rank3)
    assert report.incumbent_hr == 1.0
    assert report.incumbent_ndcg == pytest.approx(1.0 / np.log2(4))


def test_interleaved_query_order_alternates_per_example():
    trace = []
    incumbent = StubEngine(lambda u, h: [0], trace=trace, name="incumbent")
    candidate = StubEngine(lambda u, h: [0], trace=trace, name="candidate")
    ShadowEvaluator(EXAMPLES, k=1).evaluate(incumbent, candidate)
    assert trace == ["incumbent", "candidate", "candidate", "incumbent",
                     "incumbent", "candidate", "candidate", "incumbent"]


def test_both_engines_see_identical_histories():
    evaluator = ShadowEvaluator(EXAMPLES, k=3)
    incumbent, candidate = perfect_for(TARGETS), perfect_for(TARGETS)
    evaluator.evaluate(incumbent, candidate)
    assert incumbent.histories == candidate.histories
    assert incumbent.histories[0] == [5, 6]  # target held out of history


def test_gate_passes_equivalent_candidate():
    evaluator = ShadowEvaluator(EXAMPLES, k=3)
    report = evaluator.gate(perfect_for(TARGETS), perfect_for(TARGETS),
                            tolerance=0.0)
    assert report.hr_delta == 0.0


def test_gate_refuses_regressed_candidate_with_typed_error():
    evaluator = ShadowEvaluator(EXAMPLES, k=3)
    incumbent = perfect_for(TARGETS)
    candidate = StubEngine(lambda user, history: [50, 51, 52])
    with pytest.raises(ShadowRegression) as excinfo:
        evaluator.gate(incumbent, candidate, tolerance=0.05)
    error = excinfo.value
    assert error.tolerance == 0.05
    assert error.report.hr_delta == -1.0
    assert "candidate refused by shadow evaluation" in str(error)
    round_trip = error.report.to_dict()
    assert round_trip["hr_delta"] == -1.0
    assert round_trip["examples"] == 4


def test_gate_tolerance_absorbs_small_regressions():
    evaluator = ShadowEvaluator(EXAMPLES, k=3)
    incumbent = perfect_for(TARGETS)
    # Misses exactly one of the four examples: HR drops by 0.25.
    candidate = StubEngine(
        lambda user, history: [50, 51, 52] if user == 0
        else [TARGETS[user], 99, 98])
    report = evaluator.gate(incumbent, candidate, tolerance=0.25)
    assert report.hr_delta == pytest.approx(-0.25)
    with pytest.raises(ShadowRegression):
        evaluator.gate(incumbent, candidate, tolerance=0.2)


def test_from_histories_holds_out_last_item_and_skips_short_users():
    histories = {3: [1, 2, 9], 1: [4, 5], 2: [6]}
    evaluator = ShadowEvaluator.from_histories(histories, k=5)
    assert evaluator.examples == [(1, [4], 5), (3, [1, 2], 9)]
    assert evaluator.k == 5


def test_constructor_validation():
    with pytest.raises(ValueError):
        ShadowEvaluator([], k=10)
    with pytest.raises(ValueError):
        ShadowEvaluator(EXAMPLES, k=0)
    with pytest.raises(ValueError):
        ShadowEvaluator(EXAMPLES).gate(perfect_for(TARGETS),
                                       perfect_for(TARGETS), tolerance=-0.1)
