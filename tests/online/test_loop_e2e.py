"""End-to-end online loop: drift → fine-tune → shadow-gated canary swap.

Acceptance coverage for ``docs/online-learning.md``: a live cluster feeds
the event log, the learner fine-tunes on the drifted stream and promotes
through ``swap()`` with zero dropped requests, and a deliberately
regressed candidate is refused with :class:`ShadowRegression` while the
cluster keeps serving the incumbent.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.config import ISRecConfig
from repro.core.isrec import ISRec
from repro.online import (
    OnlineConfig,
    OnlineLearner,
    ShadowEvaluator,
    ShadowRegression,
)
from repro.serve import ClusterConfig, ServingCluster, load_artifact
from repro.serve.quantize import engine_for_artifact
from repro.utils import set_seed


def fast_config(**overrides) -> ClusterConfig:
    settings = dict(world=2, default_deadline_s=10.0, max_retries=2,
                    down_gate_s=2.0, heartbeat_interval_s=0.1,
                    check_interval_s=0.02, restart_backoff_s=0.05,
                    startup_timeout_s=60.0)
    settings.update(overrides)
    return ClusterConfig(**settings)


@pytest.fixture(scope="module")
def cluster(online_artifact, base_histories):
    cluster = ServingCluster(online_artifact, config=fast_config())
    for user, items in base_histories.items():
        cluster.set_history(user, items)
    yield cluster
    cluster.close()


class Prober:
    """Hammers ``recommend`` from a thread; records every outcome."""

    def __init__(self, cluster, users):
        self.cluster = cluster
        self.users = users
        self.ok = 0
        self.degraded = 0
        self.errors: list[Exception] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self):
        index = 0
        while not self._stop.is_set():
            user = self.users[index % len(self.users)]
            index += 1
            try:
                response = self.cluster.recommend(user, k=5)
            except Exception as error:  # noqa: BLE001 - recorded, asserted
                self.errors.append(error)
            else:
                if response.degraded:
                    self.degraded += 1
                else:
                    self.ok += 1
            time.sleep(0.002)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        self._thread.join(timeout=30.0)


def test_drift_fine_tune_and_gated_promotion(cluster, base_histories,
                                             tmp_path):
    """Drifted events flow in; the learner adapts and promotes cleanly."""
    users = sorted(base_histories)
    num_items = cluster.num_items
    drift_rng = np.random.default_rng(42)
    # Simulated intent drift: users suddenly interact with a narrow band
    # of items they never touched before.
    drifted_band = np.arange(max(1, num_items - 12), num_items)
    for step in range(120):
        user = users[step % len(users)]
        cluster.observe(user, int(drift_rng.choice(drifted_band)))
    assert len(cluster.events) == 120

    model = load_artifact(cluster.artifact_path)
    shadow = ShadowEvaluator.from_histories(
        {user: cluster.router.history(user) for user in users[:24]}, k=10)
    learner = OnlineLearner(
        model, cluster.events,
        config=OnlineConfig(batch_size=16, steps_per_round=4,
                            shadow_tolerance=0.5, seed=5,
                            checkpoint_dir=str(tmp_path / "ckpts")),
        base_histories=base_histories, cluster=cluster, shadow=shadow)

    incumbent = cluster.artifact_path
    swaps_before = cluster.swaps
    with Prober(cluster, users[:8]) as prober:
        outcome = learner.run(rounds=2)
    assert not prober.errors, f"requests dropped during rollout: {prober.errors[:3]}"
    assert prober.degraded == 0
    assert prober.ok > 0

    assert outcome["refusals"] == 0
    assert len(outcome["publishes"]) == 2
    assert outcome["rounds"][0]["events"] == 120
    assert outcome["rounds"][0]["steps"] > 0
    for publish in outcome["publishes"]:
        assert publish["shadow"] is not None
        assert publish["swap"]["workers"] == 2
    assert cluster.swaps == swaps_before + 2
    assert cluster.artifact_path != incumbent
    # The promoted artifact is what the workers now serve.
    response = cluster.recommend(users[0], k=5)
    assert not response.degraded and len(response.items) == 5


def test_regressed_candidate_is_refused_and_cluster_keeps_incumbent(
        cluster, base_histories, tiny_dataset, tmp_path):
    """A bad candidate never reaches the cluster: typed refusal, no swap."""
    users = sorted(base_histories)[:16]
    incumbent_engine = engine_for_artifact(cluster.artifact_path)
    examples = []
    for user in users:
        history = cluster.router.history(user)
        incumbent_engine.set_history(user, history)
        top1 = incumbent_engine.recommend(user, k=1, filter_seen=True)
        examples.append((user, history, top1[0][0]))
    shadow = ShadowEvaluator(examples, k=10)

    # A freshly re-initialised model: valid artifact, regressed quality.
    set_seed(777)
    regressed = ISRec.from_dataset(tiny_dataset, max_len=12,
                                   config=ISRecConfig(dim=16))
    learner = OnlineLearner(
        regressed, cluster.events,
        config=OnlineConfig(shadow_tolerance=0.05, seed=9),
        cluster=cluster, shadow=shadow)

    incumbent = cluster.artifact_path
    swaps_before = cluster.swaps
    with pytest.raises(ShadowRegression) as excinfo:
        learner.publish(tmp_path / "regressed.npz")
    report = excinfo.value.report
    assert report.incumbent_hr == 1.0  # targets are the incumbent's top-1s
    assert report.hr_delta < -0.05
    # The cluster never saw the candidate.
    assert cluster.artifact_path == incumbent
    assert cluster.swaps == swaps_before
    response = cluster.recommend(users[0], k=5)
    assert not response.degraded
