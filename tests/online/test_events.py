"""EventLog: ordering, cursors, ring eviction, and thread safety."""

from __future__ import annotations

import threading

import pytest

from repro.online import EventLog, InteractionEvent


def test_append_stamps_monotonic_sequence():
    log = EventLog(capacity=16)
    stamped = [log.append(user, item)
               for user, item in [(1, 10), (2, 20), (1, 11)]]
    assert [event.seq for event in stamped] == [1, 2, 3]
    assert stamped[0] == InteractionEvent(1, 1, 10)
    assert log.latest_seq == 3
    assert log.oldest_seq == 1
    assert len(log) == 3


def test_read_since_returns_only_newer_events():
    log = EventLog(capacity=16)
    for item in range(5):
        log.append(0, item)
    events, dropped = log.read_since(0)
    assert dropped == 0
    assert [event.seq for event in events] == [1, 2, 3, 4, 5]

    tail, dropped = log.read_since(3)
    assert dropped == 0
    assert [event.item for event in tail] == [3, 4]

    empty, dropped = log.read_since(5)
    assert empty == [] and dropped == 0


def test_read_since_limit_caps_batch_without_losing_events():
    log = EventLog(capacity=16)
    for item in range(6):
        log.append(0, item)
    first, _ = log.read_since(0, limit=4)
    assert [event.seq for event in first] == [1, 2, 3, 4]
    rest, _ = log.read_since(first[-1].seq)
    assert [event.seq for event in rest] == [5, 6]


def test_ring_eviction_reports_dropped_count():
    log = EventLog(capacity=4)
    for item in range(6):
        log.append(0, item)
    # seqs 1-2 were evicted; a consumer at cursor 0 lost exactly those.
    events, dropped = log.read_since(0)
    assert dropped == 2
    assert [event.seq for event in events] == [3, 4, 5, 6]
    assert log.oldest_seq == 3
    # A consumer that had already read past the evictions loses nothing.
    events, dropped = log.read_since(3)
    assert dropped == 0
    assert [event.seq for event in events] == [4, 5, 6]


def test_empty_log_reads_clean():
    log = EventLog(capacity=4)
    assert log.read_since(0) == ([], 0)
    assert log.latest_seq == 0
    assert log.oldest_seq == 0
    assert len(log) == 0


def test_invalid_arguments_are_rejected():
    with pytest.raises(ValueError):
        EventLog(capacity=0)
    with pytest.raises(ValueError):
        EventLog().read_since(-1)


def test_stats_snapshot():
    log = EventLog(capacity=4)
    for item in range(6):
        log.append(7, item)
    assert log.stats() == {"size": 4, "capacity": 4,
                           "oldest_seq": 3, "latest_seq": 6}


def test_concurrent_appends_never_duplicate_or_skip_sequences():
    log = EventLog(capacity=10_000)
    per_thread, threads = 500, 8
    barrier = threading.Barrier(threads)

    def produce(user):
        barrier.wait()
        for item in range(per_thread):
            log.append(user, item)

    workers = [threading.Thread(target=produce, args=(user,))
               for user in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    events, dropped = log.read_since(0)
    assert dropped == 0
    seqs = [event.seq for event in events]
    assert seqs == list(range(1, threads * per_thread + 1))
    # Per-producer item order is preserved despite interleaving.
    for user in range(threads):
        items = [event.item for event in events if event.user == user]
        assert items == list(range(per_thread))
