"""Shared online-learning fixtures: a frozen tiny ISRec and base histories."""

from __future__ import annotations

import pytest

from repro.core.config import ISRecConfig
from repro.core.isrec import ISRec
from repro.serve import export_artifact, load_artifact
from repro.utils import set_seed


@pytest.fixture(scope="module")
def online_artifact(tiny_dataset, tmp_path_factory):
    """A deterministic frozen tiny-ISRec artifact (the incumbent)."""
    set_seed(1234)
    model = ISRec.from_dataset(tiny_dataset, max_len=12,
                               config=ISRecConfig(dim=16))
    return export_artifact(
        model, tmp_path_factory.mktemp("online") / "base.npz")


@pytest.fixture()
def online_model(online_artifact):
    """A fresh live copy of the incumbent weights (eval mode)."""
    return load_artifact(online_artifact)


@pytest.fixture(scope="module")
def base_histories(tiny_split):
    """``{user: [items]}`` seed histories (each user's test-stage input)."""
    histories = {}
    for user in range(tiny_split.num_users):
        items = [int(item) for item in tiny_split.test_input(user)]
        if len(items) >= 2:
            histories[user] = items
    return histories
