"""OnlineLearner: draining, fine-tuning, divergence recovery, resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.online import EventLog, OnlineConfig, OnlineLearner
from repro.serve import load_artifact
from repro.train import TrainingDiverged
from repro.utils.faults import FaultPlan, FaultyModel
from repro.utils.serialization import read_npz_verified


def make_learner(model, base_histories, tmp_path=None, **overrides):
    events = EventLog(capacity=4096)
    if tmp_path is not None:
        overrides.setdefault("checkpoint_dir", str(tmp_path / "ckpts"))
    config = OnlineConfig(batch_size=16, steps_per_round=3, seed=3,
                          **overrides)
    learner = OnlineLearner(model, events, config=config,
                            base_histories=base_histories)
    return learner, events


def feed(events, base_histories, count=6):
    """Append ``count`` events for users that have usable base histories."""
    users = sorted(base_histories)[:count]
    for offset, user in enumerate(users):
        events.append(user, base_histories[user][offset % len(
            base_histories[user])])
    return users


def test_drain_folds_events_and_advances_cursor(online_model, base_histories):
    learner, events = make_learner(online_model, base_histories)
    users = feed(events, base_histories, count=4)
    drained, dropped = learner.drain()
    assert dropped == 0
    assert [event.user for event in drained] == users
    assert learner.cursor == drained[-1].seq
    for user in users:
        assert len(learner.histories()[user]) == len(base_histories[user]) + 1
    # Nothing new: drain is idempotent at the cursor.
    assert learner.drain() == ([], 0)


def test_drain_reports_ring_dropped_events(online_model, base_histories):
    events = EventLog(capacity=3)
    learner = OnlineLearner(online_model, events,
                            config=OnlineConfig(seed=3))
    for seq in range(7):
        events.append(0, 1 + seq % 5)
    drained, dropped = learner.drain()
    assert dropped == 4
    assert len(drained) == 3


def test_fine_tune_round_updates_weights_and_checkpoints(
        online_model, base_histories, tmp_path):
    learner, events = make_learner(online_model, base_histories, tmp_path)
    feed(events, base_histories)
    before = {name: array.copy()
              for name, array in online_model.state_dict().items()}
    summary = learner.fine_tune_round()
    assert summary["round"] == 1
    assert summary["events"] == 6
    assert summary["touched_users"] == 6
    assert 0 < summary["steps"] <= 3
    assert np.isfinite(summary["mean_loss"])
    after = online_model.state_dict()
    assert any(not np.array_equal(before[name], after[name])
               for name in before)
    assert learner.rounds == 1
    assert list((tmp_path / "ckpts").glob("ckpt-*.npz"))
    assert learner.history.losses == [summary["mean_loss"]]


def test_empty_round_checkpoints_cursor_without_stepping(
        online_model, base_histories, tmp_path):
    learner, _events = make_learner(online_model, base_histories, tmp_path)
    summary = learner.fine_tune_round()
    assert summary["steps"] == 0 and summary["mean_loss"] is None
    assert learner.rounds == 1
    ckpts = list((tmp_path / "ckpts").glob("ckpt-*.npz"))
    assert ckpts, "empty rounds must still persist the cursor"


def test_min_events_skips_fine_tune_but_advances_cursor(
        online_model, base_histories):
    learner, events = make_learner(online_model, base_histories,
                                   min_events=10)
    feed(events, base_histories, count=3)
    summary = learner.fine_tune_round()
    assert summary["steps"] == 0
    assert summary["events"] == 3
    assert learner.cursor == 3


def test_divergence_recovery_rolls_back_and_halves_lr(
        online_model, base_histories):
    faulty = FaultyModel(online_model, FaultPlan(nan_loss_steps={1}))
    learner, events = make_learner(faulty, base_histories, lr=4e-3)
    feed(events, base_histories)
    summary = learner.fine_tune_round()
    assert faulty.faults_fired == [(1, "nan_loss")]
    assert learner.recoveries_used == 1
    assert summary["lr"] == pytest.approx(2e-3)
    assert summary["steps"] > 0 and np.isfinite(summary["mean_loss"])
    recovery, = learner.history.divergence_recoveries
    assert recovery["epoch"] == 1
    assert "non-finite training loss" in recovery["reason"]
    assert all(np.isfinite(array).all()
               for array in online_model.state_dict().values())


def test_divergence_exhaustion_raises_typed_error(
        online_model, base_histories):
    faulty = FaultyModel(online_model, FaultPlan(nan_loss_steps={1}))
    learner, events = make_learner(faulty, base_histories,
                                   divergence_retries=0)
    feed(events, base_histories)
    with pytest.raises(TrainingDiverged) as excinfo:
        learner.fine_tune_round()
    assert excinfo.value.epoch == 1
    assert excinfo.value.retries == 0


def test_export_meta_carries_round_and_cursor(
        online_model, base_histories, tmp_path):
    learner, events = make_learner(online_model, base_histories, tmp_path)
    feed(events, base_histories)
    learner.fine_tune_round()
    path = learner.export(tmp_path / "candidate.npz")
    _arrays, meta = read_npz_verified(path)
    assert meta["online_rounds"] == 1
    assert meta["event_cursor"] == 6
    reloaded = load_artifact(path)
    for name, array in online_model.state_dict().items():
        np.testing.assert_array_equal(reloaded.state_dict()[name], array)


def test_resume_restores_full_state(online_artifact, base_histories,
                                    tmp_path):
    model = load_artifact(online_artifact)
    learner, events = make_learner(model, base_histories, tmp_path)
    feed(events, base_histories)
    learner.fine_tune_round()

    fresh = load_artifact(online_artifact)
    revived = OnlineLearner(fresh, events, config=learner.config)
    assert revived.resume() is True
    assert revived.rounds == 1
    assert revived.cursor == learner.cursor
    assert revived.histories() == learner.histories()
    assert revived.history.losses == learner.history.losses
    for name, array in model.state_dict().items():
        np.testing.assert_array_equal(fresh.state_dict()[name], array)
    revived_optim = revived.optimizer.state_dict()
    for key, value in learner.optimizer.state_dict().items():
        if isinstance(value, (list, tuple)):
            for ours, theirs in zip(value, revived_optim[key], strict=True):
                np.testing.assert_array_equal(np.asarray(theirs),
                                              np.asarray(ours))
        else:
            assert revived_optim[key] == value


def test_resume_without_checkpoint_returns_false(online_model,
                                                 base_histories, tmp_path):
    learner, _events = make_learner(online_model, base_histories, tmp_path)
    assert learner.resume() is False


def test_resume_rejects_offline_trainer_checkpoints(
        online_model, base_histories, tmp_path):
    from repro.train import TrainingHistory
    from repro.train.checkpoint import CheckpointManager, TrainState

    manager = CheckpointManager(tmp_path / "offline", keep=1)
    manager.save(TrainState(epoch=1,
                            model_state=online_model.state_dict(),
                            optimizer_state={},
                            history=TrainingHistory()))
    learner, _events = make_learner(online_model, base_histories)
    with pytest.raises(ValueError, match="not written by an OnlineLearner"):
        learner.resume(resume_from=tmp_path / "offline")


def test_publish_requires_cluster(online_model, base_histories):
    learner, _events = make_learner(online_model, base_histories)
    with pytest.raises(ValueError, match="requires a cluster"):
        learner.publish()


def test_config_validation():
    with pytest.raises(ValueError):
        OnlineConfig(batch_size=0)
    with pytest.raises(ValueError):
        OnlineConfig(min_events=0)
    with pytest.raises(ValueError):
        OnlineConfig(export_every=-1)
    with pytest.raises(ValueError):
        OnlineConfig(clip_norm=0.0)
    with pytest.raises(ValueError):
        OnlineConfig(divergence_retries=-1)
    with pytest.raises(ValueError):
        OnlineConfig(shadow_tolerance=-0.5)
