"""Experiment runners must emit valid telemetry files next to their results."""

import json

from repro import obs
from repro.experiments import fast_config, prepare, run_model, run_table4
from repro.experiments.common import telemetry_scope

SCALE = 0.35


class TestTelemetryScope:
    def test_none_dir_disables(self):
        with telemetry_scope(None, "table9") as path:
            assert path is None
            assert not obs.telemetry_enabled()

    def test_creates_named_stream(self, tmp_path):
        with telemetry_scope(str(tmp_path), "table9") as path:
            assert obs.telemetry_enabled()
            obs.emit("probe")
        assert path == tmp_path / "table9.telemetry.jsonl"
        events = [r["event"] for r in obs.read_telemetry(path)]
        assert events == ["telemetry_start", "probe", "run_summary"]
        assert (tmp_path / "table9.telemetry.summary.json").exists()


class TestRunnerTelemetry:
    def test_table4_writes_valid_stream(self, tmp_path):
        stats = run_table4(profiles=["epinions"], scale=SCALE,
                           telemetry_dir=str(tmp_path))
        assert "epinions" in stats

        path = tmp_path / "table4.telemetry.jsonl"
        records = obs.read_telemetry(path)
        assert records[0]["schema"] == "telemetry/v1"
        assert records[0]["run"] == "table4"
        concept_events = [r for r in records if r["event"] == "concept_stats"]
        assert len(concept_events) == 1
        assert concept_events[0]["profile"] == "epinions"
        assert concept_events[0]["num_concepts"] > 0
        assert records[-1]["event"] == "run_summary"
        timing = records[-1]["metrics"]["table4.profile_seconds"]
        assert timing["count"] == 1 and timing["mean"] > 0

        summary = json.loads(
            (tmp_path / "table4.telemetry.summary.json").read_text())
        assert summary["run"] == "table4"

    def test_run_model_emits_full_training_stream(self, tmp_path):
        """End-to-end: a model run under telemetry_scope streams training,
        evaluation, and run-result records into one valid file."""
        config = fast_config(dim=16, num_negatives=20, epochs=2)
        dataset, split, evaluator = prepare("epinions", config, scale=SCALE)
        with telemetry_scope(str(tmp_path), "smoke") as path:
            result = run_model("PopRec", dataset, split, evaluator, config)
        assert result.report.hr10 >= 0.0

        events = [r["event"] for r in obs.read_telemetry(path)]
        assert events[0] == "telemetry_start"
        assert "run_start" in events
        assert "eval_batch" in events and "eval" in events
        assert "run" in events
        assert events[-1] == "run_summary"
