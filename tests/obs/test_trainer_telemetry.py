"""Trainer/evaluator instrumentation and the disabled-mode overhead bound."""

import json

import numpy as np

from repro import nn, obs
from repro.tensor import Tensor, fused
from repro.train import TrainConfig, Trainer
from repro.utils import bench


class NoisyModel(nn.Module):
    """A tiny least-squares model exposing the trainer batch protocol with
    realistic ``(users, inputs, targets, mask)`` batches."""

    name = "noisy"

    def __init__(self, num_batches=3):
        super().__init__()
        self.weight = nn.Parameter(np.zeros(4, dtype=np.float32))
        self.num_batches = num_batches

    def training_batches(self, rng):
        for start in range(self.num_batches):
            users = np.arange(start * 8, start * 8 + 8)
            inputs = rng.integers(1, 50, size=(8, 6))
            inputs[:, :2] = 0  # left padding
            targets = rng.integers(1, 50, size=(8, 6))
            mask = (inputs > 0).astype(np.float32)
            yield users, inputs, targets, mask

    def training_loss(self, batch):
        diff = self.weight - Tensor(np.ones(4, dtype=np.float32))
        return (diff * diff).sum()


class TestTrainerTelemetry:
    def test_fit_streams_parseable_step_records(self, tmp_path):
        path = tmp_path / "fit.telemetry.jsonl"
        model = NoisyModel(num_batches=3)
        config = TrainConfig(epochs=2, lr=0.1, eval_every=10, patience=0)
        with obs.telemetry_run(path, run="fit-test"):
            Trainer(model, config).fit()

        records = obs.read_telemetry(path)
        events = [r["event"] for r in records]
        assert events[0] == "telemetry_start"
        assert "train_start" in events and "train_end" in events
        assert events.count("epoch") == 2
        steps = [r for r in records if r["event"] == "train_step"]
        assert len(steps) == 6  # 3 batches x 2 epochs
        for record in steps:
            assert isinstance(record["loss"], float)
            assert isinstance(record["grad_norm"], float)
            assert record["lr"] > 0
            assert record["step_time_s"] >= 0
            assert record["tensor_allocs"] > 0
            # Batch introspection: 8 sequences, 4 non-pad tokens each.
            assert record["sequences"] == 8
            assert record["tokens"] == 32
            assert record["seq_per_s"] > 0 and record["tok_per_s"] > 0
        assert steps[0]["epoch"] == 1 and steps[-1]["epoch"] == 2  # 1-indexed

        summary = json.loads(path.with_suffix(".summary.json").read_text())
        metrics = summary["metrics"]
        assert metrics["trainer.steps"]["value"] == 6
        assert metrics["trainer.loss"]["count"] == 6
        assert metrics["trainer.grad_norm"]["count"] == 6
        assert "train_step" in summary["profile"]
        step_children = summary["profile"]["train_step"]["children"]
        assert {"forward", "backward", "optimizer_step"} <= set(step_children)

    def test_validation_and_checkpoint_events(self, tmp_path):
        path = tmp_path / "val.telemetry.jsonl"
        model = NoisyModel(num_batches=1)
        scores = iter([1.0, 2.0, 3.0])
        config = TrainConfig(epochs=3, lr=0.1, eval_every=1, patience=3,
                             checkpoint_dir=str(tmp_path / "ckpt"))
        with obs.telemetry_run(path):
            Trainer(model, config, validate=lambda: next(scores)).fit()
        records = obs.read_telemetry(path)
        validations = [r for r in records if r["event"] == "validation"]
        assert len(validations) == 3
        assert validations[-1]["best_score"] == 3.0
        assert all(v["improved"] for v in validations)
        checkpoints = [r for r in records if r["event"] == "checkpoint"]
        assert len(checkpoints) == 3
        assert all(c["seconds"] >= 0 for c in checkpoints)

    def test_disabled_fit_writes_nothing(self, tmp_path):
        model = NoisyModel(num_batches=2)
        config = TrainConfig(epochs=1, lr=0.1, eval_every=10, patience=0)
        Trainer(model, config).fit()
        registry = obs.get_registry()
        assert registry.counter("trainer.steps").value == 0
        assert registry.histogram("trainer.loss").count == 0


class TestEvaluatorTelemetry:
    def test_evaluate_emits_batch_and_pass_records(self, tmp_path,
                                                   tiny_dataset, tiny_split):
        from repro.eval import RankingEvaluator

        class RandomModel:
            max_len = 10
            name = "random"

            def __init__(self, seed=0):
                self.rng = np.random.default_rng(seed)

            def score(self, users, inputs, candidates):
                return self.rng.normal(size=candidates.shape)

        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20)
        path = tmp_path / "eval.telemetry.jsonl"
        with obs.telemetry_run(path):
            evaluator.evaluate(RandomModel(), stage="test", batch_size=32)
        records = obs.read_telemetry(path)
        batches = [r for r in records if r["event"] == "eval_batch"]
        assert len(batches) >= 2  # >32 users at batch_size=32
        assert all(b["candidates_per_s"] > 0 for b in batches)
        passes = [r for r in records if r["event"] == "eval"]
        assert len(passes) == 1
        assert passes[0]["stage"] == "test"
        assert passes[0]["num_users"] == tiny_split.num_users
        assert 0.0 <= passes[0]["hr10"] <= 1.0


class TestKernelDispatchTelemetry:
    def test_sasrec_train_step_dispatch_counted(self):
        """One instrumented train step must count the fused-path decisions
        of every dispatch site it crosses (loss, attention, layer norm)."""
        model, batch = bench._build_model_and_batch(bench.SMOKE_SHAPES)
        model.train()
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with obs.use_telemetry(), fused.use_fused(True):
                model.training_loss(batch)
        finally:
            obs.set_registry(previous)
        snap = registry.snapshot()
        assert snap["kernel_dispatch.training_loss.fused"]["value"] == 1
        assert snap["kernel_dispatch.attention.fused"]["value"] >= 1
        assert snap["kernel_dispatch.layer_norm.fused"]["value"] >= 1
        assert not any(".composed" in name for name in snap)


class TestTelemetryOverhead:
    """Deterministic (counted, not timed) overhead guarantees.

    Wall-clock "under 5%" assertions flake under machine drift, so tier-1
    asserts the *structural* properties that bound the overhead instead:
    the disabled path performs zero instrumentation work, and the enabled
    path performs a fixed O(1) amount per step.  The actual wall-clock 5%
    bound is measured by ``benchmarks/test_telemetry_overhead.py``
    (``make bench-smoke``), outside the tier-1 suite.
    """

    def test_disabled_step_does_no_instrumentation_work(self):
        model, batch = bench._build_model_and_batch(bench.SMOKE_SHAPES)
        model.train()
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            assert not obs.telemetry_enabled()
            with fused.use_fused(True):
                loss = model.training_loss(batch)
                loss.backward()
        finally:
            obs.set_registry(previous)
        # No counters, gauges, or histograms were touched anywhere in the
        # fused forward/backward — the disabled path is work-free.
        assert registry.snapshot() == {}

    def test_enabled_step_instrumentation_is_constant_per_step(self):
        """Instrumentation work must be O(1) per optimisation step: exactly
        one train_step record and one observation per trainer metric."""
        model = NoisyModel(num_batches=4)
        config = TrainConfig(epochs=2, lr=0.1, eval_every=10, patience=0)
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with obs.use_telemetry():
                Trainer(model, config).fit()
        finally:
            obs.set_registry(previous)
        steps = 4 * 2
        snap = registry.snapshot()
        assert snap["trainer.steps"]["value"] == steps
        for metric in ("trainer.loss", "trainer.grad_norm",
                       "trainer.step_time_s", "trainer.step_tensor_allocs"):
            assert snap[metric]["count"] == steps
