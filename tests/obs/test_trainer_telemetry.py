"""Trainer/evaluator instrumentation and the disabled-mode overhead bound."""

import json
from pathlib import Path

import numpy as np

from repro import nn, obs
from repro.tensor import Tensor, fused
from repro.train import TrainConfig, Trainer
from repro.utils import bench


class NoisyModel(nn.Module):
    """A tiny least-squares model exposing the trainer batch protocol with
    realistic ``(users, inputs, targets, mask)`` batches."""

    name = "noisy"

    def __init__(self, num_batches=3):
        super().__init__()
        self.weight = nn.Parameter(np.zeros(4, dtype=np.float32))
        self.num_batches = num_batches

    def training_batches(self, rng):
        for start in range(self.num_batches):
            users = np.arange(start * 8, start * 8 + 8)
            inputs = rng.integers(1, 50, size=(8, 6))
            inputs[:, :2] = 0  # left padding
            targets = rng.integers(1, 50, size=(8, 6))
            mask = (inputs > 0).astype(np.float32)
            yield users, inputs, targets, mask

    def training_loss(self, batch):
        diff = self.weight - Tensor(np.ones(4, dtype=np.float32))
        return (diff * diff).sum()


class TestTrainerTelemetry:
    def test_fit_streams_parseable_step_records(self, tmp_path):
        path = tmp_path / "fit.telemetry.jsonl"
        model = NoisyModel(num_batches=3)
        config = TrainConfig(epochs=2, lr=0.1, eval_every=10, patience=0)
        with obs.telemetry_run(path, run="fit-test"):
            Trainer(model, config).fit()

        records = obs.read_telemetry(path)
        events = [r["event"] for r in records]
        assert events[0] == "telemetry_start"
        assert "train_start" in events and "train_end" in events
        assert events.count("epoch") == 2
        steps = [r for r in records if r["event"] == "train_step"]
        assert len(steps) == 6  # 3 batches x 2 epochs
        for record in steps:
            assert isinstance(record["loss"], float)
            assert isinstance(record["grad_norm"], float)
            assert record["lr"] > 0
            assert record["step_time_s"] >= 0
            assert record["tensor_allocs"] > 0
            # Batch introspection: 8 sequences, 4 non-pad tokens each.
            assert record["sequences"] == 8
            assert record["tokens"] == 32
            assert record["seq_per_s"] > 0 and record["tok_per_s"] > 0
        assert steps[0]["epoch"] == 1 and steps[-1]["epoch"] == 2  # 1-indexed

        summary = json.loads(path.with_suffix(".summary.json").read_text())
        metrics = summary["metrics"]
        assert metrics["trainer.steps"]["value"] == 6
        assert metrics["trainer.loss"]["count"] == 6
        assert metrics["trainer.grad_norm"]["count"] == 6
        assert "train_step" in summary["profile"]
        step_children = summary["profile"]["train_step"]["children"]
        assert {"forward", "backward", "optimizer_step"} <= set(step_children)

    def test_validation_and_checkpoint_events(self, tmp_path):
        path = tmp_path / "val.telemetry.jsonl"
        model = NoisyModel(num_batches=1)
        scores = iter([1.0, 2.0, 3.0])
        config = TrainConfig(epochs=3, lr=0.1, eval_every=1, patience=3,
                             checkpoint_dir=str(tmp_path / "ckpt"))
        with obs.telemetry_run(path):
            Trainer(model, config, validate=lambda: next(scores)).fit()
        records = obs.read_telemetry(path)
        validations = [r for r in records if r["event"] == "validation"]
        assert len(validations) == 3
        assert validations[-1]["best_score"] == 3.0
        assert all(v["improved"] for v in validations)
        checkpoints = [r for r in records if r["event"] == "checkpoint"]
        assert len(checkpoints) == 3
        assert all(c["seconds"] >= 0 for c in checkpoints)

    def test_disabled_fit_writes_nothing(self, tmp_path):
        model = NoisyModel(num_batches=2)
        config = TrainConfig(epochs=1, lr=0.1, eval_every=10, patience=0)
        Trainer(model, config).fit()
        registry = obs.get_registry()
        assert registry.counter("trainer.steps").value == 0
        assert registry.histogram("trainer.loss").count == 0


class TestEvaluatorTelemetry:
    def test_evaluate_emits_batch_and_pass_records(self, tmp_path,
                                                   tiny_dataset, tiny_split):
        from repro.eval import RankingEvaluator

        class RandomModel:
            max_len = 10
            name = "random"

            def __init__(self, seed=0):
                self.rng = np.random.default_rng(seed)

            def score(self, users, inputs, candidates):
                return self.rng.normal(size=candidates.shape)

        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20)
        path = tmp_path / "eval.telemetry.jsonl"
        with obs.telemetry_run(path):
            evaluator.evaluate(RandomModel(), stage="test", batch_size=32)
        records = obs.read_telemetry(path)
        batches = [r for r in records if r["event"] == "eval_batch"]
        assert len(batches) >= 2  # >32 users at batch_size=32
        assert all(b["candidates_per_s"] > 0 for b in batches)
        passes = [r for r in records if r["event"] == "eval"]
        assert len(passes) == 1
        assert passes[0]["stage"] == "test"
        assert passes[0]["num_users"] == tiny_split.num_users
        assert 0.0 <= passes[0]["hr10"] <= 1.0


class TestKernelDispatchTelemetry:
    def test_sasrec_train_step_dispatch_counted(self):
        """One instrumented train step must count the fused-path decisions
        of every dispatch site it crosses (loss, attention, layer norm)."""
        model, batch = bench._build_model_and_batch(bench.SMOKE_SHAPES)
        model.train()
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with obs.use_telemetry(), fused.use_fused(True):
                model.training_loss(batch)
        finally:
            obs.set_registry(previous)
        snap = registry.snapshot()
        assert snap["kernel_dispatch.training_loss.fused"]["value"] == 1
        assert snap["kernel_dispatch.attention.fused"]["value"] >= 1
        assert snap["kernel_dispatch.layer_norm.fused"]["value"] >= 1
        assert not any(".composed" in name for name in snap)


class TestTelemetryOverhead:
    def test_overhead_under_five_percent(self):
        """ISSUE acceptance: telemetry must cost <5% of the fused
        train-step time.  Cross-run wall-clock comparisons against
        BENCH_kernels.json flake with machine drift, so the 5% bound is
        asserted in-session — the same fused step, telemetry fully enabled
        (registry instruments live) vs disabled — with only a loose sanity
        bound against the recorded baseline.  The disabled path does
        strictly less work than the enabled path, so the in-session bound
        also caps the disabled-mode overhead the issue asks about."""
        shapes = bench.SMOKE_SHAPES
        model, batch = bench._build_model_and_batch(shapes)
        model.train()
        parameters = list(model.parameters())

        def step():
            loss = model.training_loss(batch)
            loss.backward()
            for parameter in parameters:
                parameter.zero_grad()

        with fused.use_fused(True):
            # Measure disabled on both sides of enabled so drift during the
            # run cannot bias the comparison one way.
            disabled = bench.measure(step, repeats=8, warmup=3)
            registry = obs.MetricsRegistry()
            previous = obs.set_registry(registry)
            try:
                with obs.use_telemetry():
                    enabled = bench.measure(step, repeats=8, warmup=3)
            finally:
                obs.set_registry(previous)
            disabled_again = bench.measure(step, repeats=8, warmup=3)

        off = min(disabled["wall_time_s"], disabled_again["wall_time_s"])
        on = enabled["wall_time_s"]
        assert on <= off * 1.05, (
            f"telemetry overhead exceeds 5%: enabled {on * 1e3:.3f} ms vs "
            f"disabled {off * 1e3:.3f} ms"
        )
        # The enabled step really did record dispatches (it measured the
        # instrumented path, not a silently disabled one).
        assert registry.counter("kernel_dispatch.training_loss.fused").value > 0
        # Loose cross-run sanity bound: within 10x of the recorded baseline.
        bench_path = Path(__file__).resolve().parents[2] / "BENCH_kernels.json"
        baseline = json.loads(bench_path.read_text())["train_step"]["fused"]
        assert off <= baseline["wall_time_s"] * 10
