"""JSONL sink, telemetry_run lifecycle, summary writer, stream validation."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.sink import SCHEMA, JsonlSink, _jsonable


class TestJsonable:
    def test_native_types_pass_through(self):
        record = {"a": 1, "b": 1.5, "c": "s", "d": None, "e": True}
        assert _jsonable(record) == record

    def test_numpy_scalars_coerced(self):
        assert _jsonable(np.int64(3)) == 3
        assert isinstance(_jsonable(np.int64(3)), int)
        assert _jsonable(np.float32(1.5)) == pytest.approx(1.5)

    def test_containers_recursed(self):
        out = _jsonable({"xs": (np.int64(1), [np.float64(2.0)])})
        assert json.dumps(out) == '{"xs": [1, [2.0]]}'

    def test_unserializable_falls_back_to_str(self):
        class Opaque:
            def __str__(self):
                return "opaque"

        assert _jsonable(Opaque()) == "opaque"


class TestJsonlSink:
    def test_header_and_records(self, tmp_path):
        path = tmp_path / "run.telemetry.jsonl"
        sink = JsonlSink(path, run="test")
        sink.write({"event": "step", "loss": np.float64(1.25)})
        sink.close()
        records = obs.read_telemetry(path)
        assert len(records) == 2
        header = records[0]
        assert header["event"] == "telemetry_start"
        assert header["schema"] == SCHEMA
        assert header["run"] == "test"
        assert records[1] == {"event": "step", "loss": 1.25}
        assert sink.records_written == 2

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nest" / "run.jsonl"
        JsonlSink(path).close()
        assert path.exists()

    def test_close_idempotent_and_write_after_close_ignored(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.jsonl")
        sink.close()
        sink.close()
        sink.write({"event": "ignored"})
        assert sink.records_written == 1  # just the header

    def test_flushed_per_record(self, tmp_path):
        """A crashed run's stream must be readable without close()."""
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(path)
        sink.write({"event": "step"})
        records = obs.read_telemetry(path)  # file handle still open
        assert [r["event"] for r in records] == ["telemetry_start", "step"]
        sink.close()


class TestReadTelemetry:
    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "telemetry_start"}\nnot json\n')
        with pytest.raises(ValueError, match="invalid JSONL"):
            obs.read_telemetry(path)

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text('{"event": "step"}\n')
        with pytest.raises(ValueError, match="telemetry_start"):
            obs.read_telemetry(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="telemetry_start"):
            obs.read_telemetry(path)


class TestTelemetryRun:
    def test_stream_and_summary(self, tmp_path):
        path = tmp_path / "run.telemetry.jsonl"
        with obs.telemetry_run(path, run="unit"):
            assert obs.telemetry_enabled()
            obs.counter("work.items").inc(3)
            with obs.profile("work"):
                obs.emit("work_done", items=3)
        assert not obs.telemetry_enabled()

        records = obs.read_telemetry(path)
        events = [r["event"] for r in records]
        assert events == ["telemetry_start", "work_done", "run_summary"]
        summary_record = records[-1]
        assert summary_record["metrics"]["work.items"]["value"] == 3
        assert "work" in summary_record["profile"]

        summary = json.loads(path.with_suffix(".summary.json").read_text())
        assert summary["schema"] == SCHEMA + "/summary"
        assert summary["run"] == "unit"
        assert summary["metrics"]["work.items"]["value"] == 3

    def test_fresh_registry_per_run_and_restored_after(self, tmp_path):
        outer = obs.get_registry()
        outer_counter = outer.counter("outer.count")
        outer_counter.inc()
        with obs.telemetry_run(tmp_path / "run.jsonl"):
            inner = obs.get_registry()
            assert inner is not outer
            assert inner.snapshot() == {}
        assert obs.get_registry() is outer
        assert outer.counter("outer.count").value == 1

    def test_restores_state_on_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        outer = obs.get_registry()
        with pytest.raises(RuntimeError):
            with obs.telemetry_run(path):
                obs.emit("before_crash")
                raise RuntimeError("boom")
        assert not obs.telemetry_enabled()
        assert obs.get_registry() is outer
        # The stream is still valid JSONL including the partial run's events.
        events = [r["event"] for r in obs.read_telemetry(path)]
        assert "before_crash" in events and "run_summary" in events

    def test_summary_false_skips_sibling_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.telemetry_run(path, summary=False):
            pass
        assert not path.with_suffix(".summary.json").exists()

    def test_disabled_mode_emits_nothing(self, tmp_path):
        """With telemetry off, a sink attached to the global registry sees
        no events from the module-level instrumentation helpers."""
        sink = JsonlSink(tmp_path / "off.jsonl")
        registry = obs.get_registry()
        registry.attach(sink)
        try:
            obs.emit("ignored")
            with obs.timer("ignored.timer"):
                pass
            obs.record_kernel_dispatch("softmax", True)
        finally:
            registry.detach(sink)
            sink.close()
        assert sink.records_written == 1  # header only


class TestReportCli:
    def test_renders_stream(self, tmp_path, capsys):
        from repro.obs import report

        path = tmp_path / "run.telemetry.jsonl"
        with obs.telemetry_run(path, run="cli"):
            obs.emit("train_step", epoch=0, step=0, loss=1.5, grad_norm=0.5,
                     lr=1e-3, seq_per_s=100.0, tok_per_s=1000.0)
            obs.emit("eval", stage="valid", model="SASRec", num_users=10,
                     candidates=101, seconds=0.01, candidates_per_s=1e5,
                     hr10=0.5)
        report.main([str(path)])
        out = capsys.readouterr().out
        assert "cli" in out
        assert "train_step" in out
        assert "eval" in out
