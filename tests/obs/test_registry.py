"""The metrics registry: instruments, timers, the global toggle, profiler."""

import pytest

from repro import obs
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


class TestToggle:
    def test_disabled_by_default(self):
        assert not obs.telemetry_enabled()

    def test_use_telemetry_scopes_and_restores(self):
        assert not obs.telemetry_enabled()
        with obs.use_telemetry():
            assert obs.telemetry_enabled()
            with obs.use_telemetry(False):
                assert not obs.telemetry_enabled()
            assert obs.telemetry_enabled()
        assert not obs.telemetry_enabled()

    def test_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.use_telemetry():
                raise RuntimeError("boom")
        assert not obs.telemetry_enabled()

    def test_set_telemetry_returns_previous(self):
        assert obs.set_telemetry(True) is False
        assert obs.set_telemetry(False) is True


class TestInstruments:
    def test_counter(self):
        counter = Counter("steps")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_last_write_wins(self):
        gauge = Gauge("lr")
        assert gauge.value is None
        gauge.set(0.1)
        gauge.set(0.05)
        assert gauge.snapshot() == {"type": "gauge", "value": 0.05}

    def test_histogram_running_stats(self):
        histogram = Histogram("loss")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["mean"] == pytest.approx(2.0)
        assert snap["std"] == pytest.approx((2.0 / 3.0) ** 0.5)
        assert (snap["min"], snap["max"], snap["last"]) == (1.0, 3.0, 3.0)
        assert histogram.mean == pytest.approx(2.0)

    def test_empty_histogram(self):
        histogram = Histogram("empty")
        assert histogram.mean is None
        assert histogram.snapshot() == {"type": "histogram", "count": 0}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc()
        assert registry.counter("x").value == 2
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_timer_observes_elapsed(self):
        registry = MetricsRegistry()
        with registry.timer("span") as timer:
            pass
        assert timer.elapsed >= 0.0
        snap = registry.histogram("span").snapshot()
        assert snap["count"] == 1
        assert snap["last"] == pytest.approx(timer.elapsed)

    def test_snapshot_merges_and_sorts(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc()
        registry.gauge("a.gauge").set(1.0)
        registry.histogram("c.hist").observe(2.0)
        snap = registry.snapshot()
        assert list(snap) == ["a.gauge", "b.count", "c.hist"]
        assert snap["b.count"]["type"] == "counter"

    def test_reset_drops_instruments_keeps_sinks(self):
        written = []

        class Sink:
            def write(self, record):
                written.append(record)

        registry = MetricsRegistry()
        registry.attach(Sink())
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == {}
        registry.emit("still_attached")
        assert written[-1]["event"] == "still_attached"

    def test_emit_stamps_ts_and_fans_out(self):
        first, second = [], []

        class Sink:
            def __init__(self, store):
                self.store = store

            def write(self, record):
                self.store.append(record)

        registry = MetricsRegistry()
        a, b = Sink(first), Sink(second)
        registry.attach(a)
        registry.attach(b)
        registry.emit("step", loss=1.5)
        assert first == second
        assert first[0]["event"] == "step"
        assert first[0]["loss"] == 1.5
        assert first[0]["ts"] >= 0.0
        registry.detach(b)
        registry.emit("step2")
        assert len(first) == 2 and len(second) == 1


class TestModuleConveniences:
    def test_disabled_emit_is_noop(self, tmp_path):
        written = []

        class Sink:
            def write(self, record):
                written.append(record)

        obs.get_registry().attach(sink := Sink())
        try:
            obs.emit("ignored", value=1)
            assert written == []
        finally:
            obs.get_registry().detach(sink)

    def test_disabled_timer_is_shared_noop(self):
        from repro.obs.registry import _NULL_TIMER

        assert obs.timer("anything") is _NULL_TIMER

    def test_enabled_timer_records(self):
        registry = MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with obs.use_telemetry():
                with obs.timer("t"):
                    pass
            assert registry.histogram("t").count == 1
        finally:
            obs.set_registry(previous)

    def test_record_kernel_dispatch_respects_toggle(self):
        registry = MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            obs.record_kernel_dispatch("softmax", True)
            assert registry.snapshot() == {}  # disabled: no-op
            with obs.use_telemetry():
                obs.record_kernel_dispatch("softmax", True)
                obs.record_kernel_dispatch("softmax", False)
                obs.record_kernel_dispatch("softmax", False)
            snap = registry.snapshot()
            assert snap["kernel_dispatch.softmax.fused"]["value"] == 1
            assert snap["kernel_dispatch.softmax.composed"]["value"] == 2
        finally:
            obs.set_registry(previous)


class TestProfiler:
    @pytest.fixture(autouse=True)
    def _clean_profile(self):
        obs.reset_profile()
        yield
        obs.reset_profile()

    def test_spans_nest(self):
        with obs.use_telemetry():
            with obs.profile("step"):
                with obs.profile("forward"):
                    pass
                with obs.profile("backward"):
                    pass
            with obs.profile("step"):
                with obs.profile("forward"):
                    pass
        tree = obs.profile_tree()
        assert tree["step"]["count"] == 2
        children = tree["step"]["children"]
        assert children["forward"]["count"] == 2
        assert children["backward"]["count"] == 1
        # Children's time is contained in the parent's.
        assert (children["forward"]["total_s"] + children["backward"]["total_s"]
                <= tree["step"]["total_s"])

    def test_disabled_records_nothing(self):
        with obs.profile("ignored"):
            pass
        assert obs.profile_tree() == {}

    def test_report_renders_every_span(self):
        with obs.use_telemetry():
            with obs.profile("outer"):
                with obs.profile("inner"):
                    pass
        report = obs.profile_report()
        assert "outer" in report and "inner" in report
        assert "%" in report  # child share of parent

    def test_report_empty(self):
        assert "no profile spans" in obs.profile_report()

    def test_reset_while_span_open(self):
        with obs.use_telemetry():
            with obs.profile("outer"):
                obs.reset_profile()
                with obs.profile("fresh"):
                    pass
        assert "fresh" in obs.profile_tree()
