"""Golden end-to-end regression: a seeded 2-epoch ISRec run, pinned.

Trains ISRec on the shared synthetic dataset with fixed seeds and compares
the loss curve and the Table 2 ranking metrics against golden values
captured from the same code path (tolerance 1e-6).  Any change anywhere in
the stack that perturbs training numerics — data generation, init,
autograd kernels, the optimizer, negative sampling, evaluation — fails
this test, which is the point: numeric drift must be a conscious decision
(re-pin the goldens in the same PR that explains it).

The trained model is then frozen through the serving exporter and the
evaluation repeated via :class:`repro.serve.RecommendationEngine`, which
must reproduce the golden metrics bit for bit.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import ISRec, ISRecConfig, RankingEvaluator, TrainConfig
from repro.serve import RecommendationEngine, export_artifact, load_artifact
from repro.utils import set_seed

#: Captured from two identical runs of this exact recipe (bitwise-equal
#: repeats) at the PR that introduced the serving subsystem.
GOLDEN_LOSSES = [4.167086760203044, 4.130825837453206]
GOLDEN_METRICS = {
    "hr10": 0.3707865168539326,
    "ndcg10": 0.1585445412717844,
    "mrr": 0.12416179388152364,
}
#: Same recipe with the intent-contrastive auxiliary loss armed
#: (``contrastive_weight=0.1``); captured from two bitwise-equal repeats at
#: the PR that introduced the objective.  The loss includes the weighted
#: InfoNCE term, hence the level shift vs ``GOLDEN_LOSSES``.
GOLDEN_CONTRASTIVE_LOSSES = [4.446861743927002, 4.395038922627767]
GOLDEN_CONTRASTIVE_METRICS = {
    "hr10": 0.34831460674157305,
    "ndcg10": 0.16460191177901892,
    "mrr": 0.13812161573906967,
}
TOLERANCE = 1e-6


@pytest.fixture(scope="module")
def golden_run(tiny_dataset, tiny_split):
    """One seeded 2-epoch training run shared by every assertion."""
    set_seed(2024)
    model = ISRec.from_dataset(tiny_dataset, max_len=12,
                               config=ISRecConfig(dim=16))
    history = model.fit(
        tiny_dataset, tiny_split,
        TrainConfig(epochs=2, batch_size=32, lr=3e-3, eval_every=10,
                    patience=0, seed=0))
    evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                 num_negatives=40, seed=0,
                                 popularity=tiny_dataset.item_popularity())
    report = evaluator.evaluate(model, stage="test")
    return model, history, evaluator, report


class TestGoldenRun:
    def test_loss_curve_pinned(self, golden_run):
        _model, history, _evaluator, _report = golden_run
        assert len(history.losses) == len(GOLDEN_LOSSES)
        np.testing.assert_allclose(history.losses, GOLDEN_LOSSES,
                                   rtol=0, atol=TOLERANCE)

    def test_ranking_metrics_pinned(self, golden_run):
        _model, _history, _evaluator, report = golden_run
        np.testing.assert_allclose(
            [report.hr10, report.ndcg10, report.mrr],
            [GOLDEN_METRICS["hr10"], GOLDEN_METRICS["ndcg10"],
             GOLDEN_METRICS["mrr"]],
            rtol=0, atol=TOLERANCE)

    def test_metrics_are_nontrivial(self, golden_run):
        """Guard the goldens themselves: training actually learned."""
        _model, history, _evaluator, report = golden_run
        assert history.losses[1] < history.losses[0]
        assert report.hr10 > 0.1
        assert 0.0 < report.mrr < report.hr10

    def test_served_model_reproduces_golden_metrics(self, golden_run,
                                                    tiny_split, tmp_path):
        model, _history, evaluator, report = golden_run
        artifact = export_artifact(model, tmp_path / "golden.npz")
        engine = RecommendationEngine(load_artifact(artifact))
        served_report = evaluator.evaluate(engine, stage="test")
        assert dataclasses.asdict(served_report) == dataclasses.asdict(report)


@pytest.fixture(scope="module")
def golden_contrastive_run(tiny_dataset, tiny_split):
    """The golden recipe with the intent-contrastive objective armed."""
    set_seed(2024)
    model = ISRec.from_dataset(tiny_dataset, max_len=12,
                               config=ISRecConfig(dim=16))
    history = model.fit(
        tiny_dataset, tiny_split,
        TrainConfig(epochs=2, batch_size=32, lr=3e-3, eval_every=10,
                    patience=0, seed=0, contrastive_weight=0.1))
    evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                 num_negatives=40, seed=0,
                                 popularity=tiny_dataset.item_popularity())
    report = evaluator.evaluate(model, stage="test")
    return model, history, evaluator, report


class TestGoldenContrastiveRun:
    def test_loss_curve_pinned(self, golden_contrastive_run):
        _model, history, _evaluator, _report = golden_contrastive_run
        assert len(history.losses) == len(GOLDEN_CONTRASTIVE_LOSSES)
        np.testing.assert_allclose(history.losses, GOLDEN_CONTRASTIVE_LOSSES,
                                   rtol=0, atol=TOLERANCE)

    def test_ranking_metrics_pinned(self, golden_contrastive_run):
        _model, _history, _evaluator, report = golden_contrastive_run
        np.testing.assert_allclose(
            [report.hr10, report.ndcg10, report.mrr],
            [GOLDEN_CONTRASTIVE_METRICS["hr10"],
             GOLDEN_CONTRASTIVE_METRICS["ndcg10"],
             GOLDEN_CONTRASTIVE_METRICS["mrr"]],
            rtol=0, atol=TOLERANCE)

    def test_objective_actually_differs_from_baseline(self,
                                                      golden_contrastive_run):
        """The aux loss must change training (else the golden is vacuous),
        while weight 0 (the default) keeps ``GOLDEN_LOSSES`` pinned above."""
        _model, history, _evaluator, _report = golden_contrastive_run
        assert abs(history.losses[0] - GOLDEN_LOSSES[0]) > 1e-3

    def test_served_contrastive_model_is_bit_identical(
            self, golden_contrastive_run, tmp_path):
        """The contrastive-trained weights serve bit-identically: training
        objectives change learning, never the serving path."""
        model, _history, evaluator, report = golden_contrastive_run
        artifact = export_artifact(model, tmp_path / "golden-contrastive.npz")
        engine = RecommendationEngine(load_artifact(artifact))
        served_report = evaluator.evaluate(engine, stage="test")
        assert dataclasses.asdict(served_report) == dataclasses.asdict(report)
