"""Utility helpers: seeding, tables, timer."""

import numpy as np
import pytest

from repro.utils import ResultTable, Timer, format_float, get_rng, set_seed, temp_seed


class TestSeeding:
    def test_set_seed_reproducible(self):
        set_seed(42)
        a = get_rng().random(5)
        set_seed(42)
        b = get_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_temp_seed_restores(self):
        set_seed(1)
        outer_first = get_rng().random()
        set_seed(1)
        with temp_seed(99):
            inner = get_rng().random()
        outer_second = get_rng().random()
        assert outer_first == outer_second
        set_seed(99)
        assert inner == get_rng().random()


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable(["Metric", "A"], title="demo")
        table.add_row(["HR@10", 0.1234567])
        text = table.render()
        assert "demo" in text
        assert "0.1235" in text

    def test_row_width_validated(self):
        table = ResultTable(["A", "B"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_string_cells_passthrough(self):
        table = ResultTable(["A"])
        table.add_row(["+12.3%"])
        assert "+12.3%" in str(table)

    def test_format_float(self):
        assert format_float(0.5) == "0.5000"
        assert format_float(None) == "-"
        assert format_float("x") == "x"
        assert format_float(1 / 3, digits=2) == "0.33"


class TestTimer:
    def test_elapsed_nonnegative(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0
