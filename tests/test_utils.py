"""Utility helpers: seeding, tables, timer, checkpoint files, fault injection."""

import json

import numpy as np
import pytest

from repro import nn
from repro.utils import (
    CheckpointIntegrityError,
    FaultPlan,
    ResultTable,
    Timer,
    format_float,
    get_rng,
    load_checkpoint,
    save_checkpoint,
    set_seed,
    temp_seed,
    truncate_file,
    write_npz_atomic,
)
from repro.utils.serialization import (
    normalize_checkpoint_path,
    read_npz_verified,
)


class TestSeeding:
    def test_set_seed_reproducible(self):
        set_seed(42)
        a = get_rng().random(5)
        set_seed(42)
        b = get_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_temp_seed_restores(self):
        set_seed(1)
        outer_first = get_rng().random()
        set_seed(1)
        with temp_seed(99):
            inner = get_rng().random()
        outer_second = get_rng().random()
        assert outer_first == outer_second
        set_seed(99)
        assert inner == get_rng().random()


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable(["Metric", "A"], title="demo")
        table.add_row(["HR@10", 0.1234567])
        text = table.render()
        assert "demo" in text
        assert "0.1235" in text

    def test_row_width_validated(self):
        table = ResultTable(["A", "B"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_string_cells_passthrough(self):
        table = ResultTable(["A"])
        table.add_row(["+12.3%"])
        assert "+12.3%" in str(table)

    def test_format_float(self):
        assert format_float(0.5) == "0.5000"
        assert format_float(None) == "-"
        assert format_float("x") == "x"
        assert format_float(1 / 3, digits=2) == "0.33"


class TestTimer:
    def test_elapsed_nonnegative(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0


class TinyModel(nn.Module):
    def __init__(self):
        super().__init__()
        self.weight = nn.Parameter(np.arange(4, dtype=np.float32))


class TestCheckpointPathRule:
    """The rule: ``.npz`` is appended unless the name already ends in it."""

    @pytest.mark.parametrize("given, expected", [
        ("ckpt", "ckpt.npz"),
        ("ckpt.npz", "ckpt.npz"),
        ("ckpt.v1", "ckpt.v1.npz"),
        ("ckpt.v1.npz", "ckpt.v1.npz"),
        ("model.backup.2024", "model.backup.2024.npz"),
    ])
    def test_normalization(self, given, expected):
        assert normalize_checkpoint_path(given).name == expected

    def test_save_load_with_versioned_suffix(self, tmp_path):
        model = TinyModel()
        path = save_checkpoint(model, tmp_path / "ckpt.v1")
        assert path.name == "ckpt.v1.npz"
        clone = TinyModel()
        clone.weight.data[...] = 0
        # Loading by the un-suffixed name resolves to the written file.
        load_checkpoint(clone, tmp_path / "ckpt.v1")
        np.testing.assert_array_equal(clone.weight.data, model.weight.data)


class TestCheckpointIntegrity:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        save_checkpoint(TinyModel(), tmp_path / "model")
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_meta_array_keyset_mismatch_rejected(self, tmp_path):
        """A checkpoint whose __meta__ key-set disagrees with the stored
        arrays is rejected with a clear error, not an opaque KeyError."""
        path = save_checkpoint(TinyModel(), tmp_path / "model")
        arrays, meta = read_npz_verified(path)
        meta["keys"] = ["weight", "ghost_parameter"]
        payload = dict(arrays)
        payload["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez(path, **payload)
        with pytest.raises(CheckpointIntegrityError, match="disagree"):
            load_checkpoint(TinyModel(), path)

    def test_truncated_file_rejected(self, tmp_path):
        path = save_checkpoint(TinyModel(), tmp_path / "model")
        truncate_file(path, fraction=0.5)
        with pytest.raises(CheckpointIntegrityError):
            load_checkpoint(TinyModel(), path)

    def test_checksum_mismatch_rejected(self, tmp_path):
        path = write_npz_atomic(tmp_path / "blob.npz",
                                {"values": np.arange(32, dtype=np.float32)},
                                {"kind": "test"})
        arrays, meta = read_npz_verified(path)
        meta["checksums"]["values"] = (meta["checksums"]["values"] + 1) % 2**32
        payload = {"values": arrays["values"],
                   "__meta__": np.frombuffer(
                       json.dumps(meta).encode("utf-8"), dtype=np.uint8)}
        np.savez(path, **payload)
        with pytest.raises(CheckpointIntegrityError, match="checksum"):
            read_npz_verified(path)

    def test_reserved_meta_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_npz_atomic(tmp_path / "x.npz",
                             {"__meta__": np.zeros(1)}, {})


class TestFaultHelpers:
    def test_truncate_file_fraction_validated(self, tmp_path):
        target = tmp_path / "f.bin"
        target.write_bytes(b"x" * 100)
        with pytest.raises(ValueError):
            truncate_file(target, fraction=1.0)
        truncate_file(target, fraction=0.25)
        assert target.stat().st_size == 25

    def test_fault_plan_probability_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(nan_loss_prob=1.5)
