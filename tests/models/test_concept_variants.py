"""The +concept variants must actually consume the concept matrix."""

import numpy as np

from repro.models import BERT4RecConcept, SASRecConcept
from repro.utils import set_seed


class TestConceptVariants:
    def test_sasrec_concept_output_depends_on_concepts(self, tiny_dataset):
        set_seed(0)
        with_concepts = SASRecConcept(tiny_dataset.num_items,
                                      tiny_dataset.item_concepts,
                                      dim=16, max_len=8)
        set_seed(0)
        zero_concepts = SASRecConcept(tiny_dataset.num_items,
                                      np.zeros_like(tiny_dataset.item_concepts),
                                      dim=16, max_len=8)
        with_concepts.eval()
        zero_concepts.eval()
        inputs = np.ones((1, 8), dtype=np.int64)
        a = with_concepts.sequence_output(inputs).data
        b = zero_concepts.sequence_output(inputs).data
        assert not np.allclose(a, b, atol=1e-4)

    def test_bert_concept_mask_row_has_no_concepts(self, tiny_dataset):
        model = BERT4RecConcept(tiny_dataset.num_items,
                                tiny_dataset.item_concepts, dim=16, max_len=8)
        multi_hot = model.concept_embedding.multi_hot
        assert multi_hot.shape[0] == tiny_dataset.num_items + 2
        np.testing.assert_array_equal(multi_hot[model.mask_token], 0.0)

    def test_names(self, tiny_dataset):
        assert SASRecConcept(tiny_dataset.num_items, tiny_dataset.item_concepts,
                             dim=16).name == "SASRec+concept"
        assert BERT4RecConcept(tiny_dataset.num_items, tiny_dataset.item_concepts,
                               dim=16).name == "BERT4Rec+concept"

    def test_concept_gradient_reaches_table(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = SASRecConcept(tiny_dataset.num_items, tiny_dataset.item_concepts,
                              dim=16, max_len=8)
        model._train_sequences = tiny_split.train_sequences()
        batch = next(iter(model.training_batches(np.random.default_rng(0))))
        loss = model.training_loss(batch)
        loss.backward()
        assert model.concept_embedding.weight.grad is not None
        assert np.abs(model.concept_embedding.weight.grad).sum() > 0
