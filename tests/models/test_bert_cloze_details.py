"""Details of BERT4Rec's cloze masking scheme."""

import numpy as np

from repro.models import BERT4Rec
from repro.utils import set_seed


class TestClozeMasking:
    def _model_and_batch(self, tiny_dataset, tiny_split, mask_prob=0.5):
        set_seed(0)
        model = BERT4Rec(tiny_dataset.num_items, dim=16, max_len=8,
                         mask_prob=mask_prob)
        model._train_sequences = tiny_split.train_sequences()
        rng = np.random.default_rng(0)
        batch = next(iter(model.training_batches(rng)))
        return model, batch

    def test_padding_never_masked(self, tiny_dataset, tiny_split):
        model, (sequences, rng) = self._model_and_batch(tiny_dataset, tiny_split)
        real = sequences > 0
        cloze = (rng.random(sequences.shape) < model.mask_prob) & real
        assert not (cloze & ~real).any()

    def test_last_real_position_always_trainable(self, tiny_dataset, tiny_split):
        """With left-padding the last column is always a real item, and the
        loss construction always includes it as a cloze target."""
        model, (sequences, _rng) = self._model_and_batch(tiny_dataset, tiny_split)
        assert (sequences[:, -1] > 0).all()

    def test_mask_rate_matches_probability(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = BERT4Rec(tiny_dataset.num_items, dim=16, max_len=8,
                         mask_prob=0.3)
        model._train_sequences = tiny_split.train_sequences()
        rng = np.random.default_rng(0)
        rates = []
        for sequences, batch_rng in model.training_batches(rng):
            real = sequences > 0
            cloze = (batch_rng.random(sequences.shape) < 0.3) & real
            rates.append(cloze.sum() / max(real.sum(), 1))
        # Random masking plus the always-masked last position: rate ~>= 0.3.
        assert 0.15 < float(np.mean(rates)) < 0.6

    def test_mask_token_suppressed_in_predictions(self, tiny_dataset, tiny_split):
        model, batch = self._model_and_batch(tiny_dataset, tiny_split)
        sequences, _rng = batch
        states = model.sequence_output(
            np.where(sequences > 0, model.mask_token, 0))
        logits = model.all_item_logits(states)
        suppress = np.zeros((1, 1, model.num_items + 2), dtype=logits.data.dtype)
        suppress[..., model.mask_token] = -1e9
        from repro.tensor import Tensor

        final = (logits + Tensor(suppress)).data
        assert (final[..., model.mask_token] < -1e8).all()
        assert (final[..., 0] < -1e8).all()
