"""DGCF propagation-cache invalidation."""

import numpy as np

from repro.models import DGCF
from repro.train import TrainConfig
from repro.utils import set_seed


class TestCacheInvalidation:
    def test_load_state_dict_clears_cache(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = DGCF(tiny_dataset.num_users, tiny_dataset.num_items, dim=16,
                     routing_iterations=1)
        model.fit(tiny_dataset, tiny_split,
                  TrainConfig(epochs=1, eval_every=10, patience=0))
        users = np.arange(3)
        inputs = np.zeros((3, 5), dtype=np.int64)
        candidates = np.tile(np.arange(1, 6), (3, 1))
        before = model.score(users, inputs, candidates)
        assert model._cached_final is not None

        # Change weights through the official restore path; scores must move.
        state = model.state_dict()
        for key in state:
            state[key] = state[key] + 1.0
        model.load_state_dict(state)
        assert model._cached_final is None
        after = model.score(users, inputs, candidates)
        assert not np.allclose(before, after)

    def test_training_step_clears_cache(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = DGCF(tiny_dataset.num_users, tiny_dataset.num_items, dim=16,
                     routing_iterations=1)
        model.fit(tiny_dataset, tiny_split,
                  TrainConfig(epochs=1, eval_every=10, patience=0))
        users = np.arange(2)
        inputs = np.zeros((2, 5), dtype=np.int64)
        candidates = np.tile(np.arange(1, 6), (2, 1))
        model.score(users, inputs, candidates)
        assert model._cached_final is not None
        rng = np.random.default_rng(0)
        batch = next(iter(model.training_batches(rng)))
        model.training_loss(batch)
        assert model._cached_final is None
