"""Contract tests every recommender must satisfy.

Each model is trained for a couple of epochs on the tiny dataset, then we
check the scoring contract (shapes, finiteness, determinism in eval mode)
and that training actually learns something (better than random ranking).
"""

import numpy as np
import pytest

from repro.core import ISRec, ISRecConfig
from repro.data.batching import evaluation_inputs
from repro.eval import RankingEvaluator
from repro.models import (
    BERT4Rec,
    BERT4RecConcept,
    BPRMF,
    Caser,
    DGCF,
    FPMC,
    GRU4Rec,
    GRU4RecPlus,
    NCF,
    PopRec,
    SASRec,
    SASRecConcept,
)
from repro.utils import set_seed

MAX_LEN = 12


def build(name, dataset):
    num_users, num_items = dataset.num_users, dataset.num_items
    dim = 16
    factory = {
        "PopRec": lambda: PopRec(max_len=MAX_LEN),
        "BPR-MF": lambda: BPRMF(num_users, num_items, dim=dim, max_len=MAX_LEN),
        "NCF": lambda: NCF(num_users, num_items, dim=dim, max_len=MAX_LEN),
        "FPMC": lambda: FPMC(num_users, num_items, dim=dim, max_len=MAX_LEN),
        "GRU4Rec": lambda: GRU4Rec(num_items, dim=dim, max_len=MAX_LEN),
        "GRU4Rec+": lambda: GRU4RecPlus(num_items, dim=dim, max_len=MAX_LEN),
        "DGCF": lambda: DGCF(num_users, num_items, dim=dim, max_len=MAX_LEN),
        "Caser": lambda: Caser(num_users, num_items, dim=dim, max_len=MAX_LEN),
        "SASRec": lambda: SASRec(num_items, dim=dim, max_len=MAX_LEN),
        "SASRec+concept": lambda: SASRecConcept(num_items, dataset.item_concepts,
                                                dim=dim, max_len=MAX_LEN),
        "BERT4Rec": lambda: BERT4Rec(num_items, dim=dim, max_len=MAX_LEN),
        "BERT4Rec+concept": lambda: BERT4RecConcept(num_items, dataset.item_concepts,
                                                    dim=dim, max_len=MAX_LEN),
        "ISRec": lambda: ISRec.from_dataset(dataset, max_len=MAX_LEN,
                                            config=ISRecConfig(dim=dim)),
    }
    return factory[name]()

ALL_MODELS = ["PopRec", "BPR-MF", "NCF", "FPMC", "GRU4Rec", "GRU4Rec+", "DGCF",
              "Caser", "SASRec", "SASRec+concept", "BERT4Rec",
              "BERT4Rec+concept", "ISRec"]


@pytest.fixture(scope="module")
def fitted_models(tiny_dataset, tiny_split, request):
    """Train every model once; reused by all contract tests."""
    from repro.train import TrainConfig

    config = TrainConfig(epochs=2, batch_size=32, lr=3e-3, eval_every=10,
                         patience=0, seed=0)
    models = {}
    for name in ALL_MODELS:
        set_seed(0)
        model = build(name, tiny_dataset)
        model.fit(tiny_dataset, tiny_split, config)
        models[name] = model
    return models


@pytest.mark.parametrize("name", ALL_MODELS)
class TestScoringContract:
    def test_score_shape_and_finite(self, fitted_models, tiny_dataset, tiny_split, name):
        model = fitted_models[name]
        inputs, _ = evaluation_inputs(tiny_split, "test", model.max_len)
        users = np.arange(min(6, tiny_split.num_users))
        candidates = np.tile(np.arange(1, 9), (len(users), 1))
        scores = model.score(users, inputs[:len(users)], candidates)
        assert scores.shape == candidates.shape
        assert np.isfinite(scores).all()

    def test_score_deterministic_in_eval(self, fitted_models, tiny_dataset,
                                         tiny_split, name):
        model = fitted_models[name]
        if hasattr(model, "eval"):
            model.eval()
        inputs, _ = evaluation_inputs(tiny_split, "test", model.max_len)
        users = np.arange(4)
        candidates = np.tile(np.arange(1, 6), (4, 1))
        first = model.score(users, inputs[:4], candidates)
        second = model.score(users, inputs[:4], candidates)
        np.testing.assert_allclose(first, second, rtol=1e-5)

    def test_evaluable(self, fitted_models, tiny_dataset, tiny_split, name):
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=20, seed=0)
        report = evaluator.evaluate(fitted_models[name], stage="test")
        assert 0.0 <= report.hr10 <= 1.0
        assert report.hr1 <= report.hr5 <= report.hr10


class TestLearning:
    """Spot-check that a couple of representative models beat random."""

    @pytest.mark.parametrize("name", ["SASRec", "GRU4Rec", "ISRec", "BPR-MF"])
    def test_better_than_chance(self, tiny_dataset, tiny_split, name):
        from repro.train import TrainConfig

        set_seed(0)
        model = build(name, tiny_dataset)
        model.fit(tiny_dataset, tiny_split,
                  TrainConfig(epochs=30, batch_size=32, lr=5e-3,
                              eval_every=5, patience=3, seed=0))
        evaluator = RankingEvaluator(tiny_split, tiny_dataset.num_items,
                                     num_negatives=45, seed=0)
        # Pool valid+test ranks to halve the variance of this small check.
        hr10 = (evaluator.evaluate(model, stage="test").hr10
                + evaluator.evaluate(model, stage="valid").hr10) / 2.0
        # 46 candidates -> random HR@10 ~ 0.22; require a clear margin.
        assert hr10 > 0.30, f"{name} failed to beat chance: {hr10}"
