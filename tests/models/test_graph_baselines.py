"""Structure-aware baselines (KTUP, FM): gradients, serving, registry.

Pins the three contracts ``docs/graph-workloads.md`` promises:

- both models are gradcheck-clean under the fused *and* composed kernel
  dispatch (KTUP's preference attention goes through ``F.softmax``, FM's
  training loss through the shared cross-entropy) and forward-consistent
  across every numeric backend;
- both export to inference artifacts and serve through
  :class:`~repro.serve.RecommendationEngine` with evaluator-parity — the
  engine's metrics equal the offline model's bitwise;
- both are registered for artifact loading (registry round-trip).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.data import load_dataset, split_leave_one_out
from repro.models import FM, KTUP
from repro.models.base import validation_evaluator
from repro.models.fm import _running_mean_weights
from repro.serve import (
    RecommendationEngine,
    export_artifact,
    load_artifact,
    servable_models,
)
from repro.tensor import Tensor, fused, gradcheck
from repro.tensor.backend import available_backends, use_backend
from repro.train import TrainConfig
from repro.utils import set_seed


@pytest.fixture(scope="module")
def graph_dataset():
    return load_dataset("beauty-kg", scale=0.35)


@pytest.fixture(scope="module")
def graph_split(graph_dataset):
    return split_leave_one_out(graph_dataset.sequences)


def _promote(model):
    for _, param in model.named_parameters():
        param.data = param.data.astype(np.float64)
    return model


def _tiny_ktup(**overrides):
    triples = np.array([[1, 0, 6], [2, 1, 7], [3, 0, 8], [1, 2, 4]],
                       dtype=np.int64)
    kwargs = dict(num_items=5, kg_triples=triples, num_entities=8,
                  num_relations=3, dim=4, max_len=6)
    kwargs.update(overrides)
    return KTUP(**kwargs)


def _tiny_fm():
    rng = np.random.default_rng(3)
    concepts = rng.random((6, 7)).astype(np.float32)
    concepts[0] = 0.0
    return FM(num_items=5, item_concepts=concepts, dim=4, max_len=6)


class TestRunningMean:
    def test_left_padded_running_mean(self):
        inputs = np.array([[0, 0, 2, 3], [1, 1, 1, 1], [0, 0, 0, 0]])
        weights = _running_mean_weights(inputs)
        values = np.arange(1, 5, dtype=np.float32)[None, :, None]
        means = (weights @ np.broadcast_to(values, (3, 4, 1)))[:, :, 0]
        # Row 0: padding contributes nothing; position 3 averages items 3, 4.
        np.testing.assert_allclose(means[0], [0, 0, 3, 3.5])
        # Row 1: plain running mean 1, 1.5, 2, 2.5.
        np.testing.assert_allclose(means[1], [1, 1.5, 2, 2.5])
        # Row 2: all padding averages to zero.
        np.testing.assert_allclose(means[2], 0)


@pytest.mark.parametrize("dispatch", ["fused", "composed"])
class TestGradcheck:
    def test_ktup_sequence_output(self, dispatch):
        set_seed(0)
        model = _promote(_tiny_ktup())
        inputs = np.array([[0, 1, 2, 3, 1, 5], [0, 0, 0, 4, 4, 2]])
        func = lambda *params: (model.sequence_output(inputs) ** 2).sum()
        params = [model.item_embedding.weight,
                  model.preference_embedding.weight,
                  model.relation_embedding.weight]
        with fused.use_fused(dispatch == "fused"):
            assert gradcheck(func, params, atol=5e-4)

    def test_ktup_kg_loss(self, dispatch):
        set_seed(0)
        model = _promote(_tiny_ktup(margin=2.0))
        positives = model.kg_triples
        corrupt = np.array([5, 3, 7, 8], dtype=np.int64)
        func = lambda *params: model.kg_loss(positives, corrupt)
        params = [model.item_embedding.weight,
                  model.entity_embedding.weight,
                  model.relation_embedding.weight,
                  model.relation_norm.weight]
        with fused.use_fused(dispatch == "fused"):
            assert gradcheck(func, params, atol=5e-4)

    def test_ktup_training_loss(self, dispatch):
        set_seed(0)
        model = _promote(_tiny_ktup())
        inputs = np.array([[0, 1, 2, 3, 1, 5]])
        targets = np.array([[1, 2, 3, 1, 5, 4]])
        mask = (inputs > 0).astype(np.float64)
        negatives = np.array([[2, 4]])
        kg = (model.kg_triples, np.array([5, 3, 7, 8], dtype=np.int64))
        batch = (np.array([0]), inputs, targets, mask, negatives, kg)
        func = lambda *params: model.training_loss(batch)
        params = [model.item_embedding.weight,
                  model.preference_embedding.weight]
        with fused.use_fused(dispatch == "fused"):
            assert gradcheck(func, params, atol=5e-4)

    def test_fm_sequence_output(self, dispatch):
        set_seed(0)
        model = _promote(_tiny_fm())
        inputs = np.array([[0, 1, 2, 3, 1, 5], [0, 0, 0, 4, 4, 2]])
        func = lambda *params: (model.sequence_output(inputs) ** 2).sum()
        params = [model.item_embedding.weight,
                  model.concept_projection.weight]
        with fused.use_fused(dispatch == "fused"):
            assert gradcheck(func, params, atol=5e-4)

    def test_fm_training_loss(self, dispatch):
        # Exercises the shared fused/composed cross-entropy path.
        set_seed(0)
        model = _promote(_tiny_fm())
        inputs = np.array([[0, 1, 2, 3, 1, 5]])
        targets = np.array([[1, 2, 3, 1, 5, 4]])
        mask = (inputs > 0).astype(np.float64)
        batch = (np.array([0]), inputs, targets, mask)
        func = lambda *params: model.training_loss(batch)
        params = [model.item_embedding.weight,
                  model.concept_projection.weight]
        with fused.use_fused(dispatch == "fused"):
            assert gradcheck(func, params, atol=5e-4)


class TestBackends:
    """Forward pass must agree across every registered numeric backend."""

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_forward_consistent(self, backend):
        inputs = np.array([[0, 1, 2, 3, 1, 5], [0, 0, 0, 4, 4, 2]])
        for build in (_tiny_ktup, _tiny_fm):
            set_seed(0)
            reference = build().sequence_output(inputs).data
            set_seed(0)
            with use_backend(backend):
                model = build()
                output = model.sequence_output(inputs).data
            np.testing.assert_allclose(np.asarray(output, dtype=np.float64),
                                       np.asarray(reference, dtype=np.float64),
                                       atol=1e-5)


class TestConstruction:
    def test_from_dataset_requires_graph(self, tiny_dataset):
        with pytest.raises(ValueError, match="knowledge graph"):
            KTUP.from_dataset(tiny_dataset)

    def test_from_graph_dataset(self, graph_dataset):
        model = KTUP.from_dataset(graph_dataset, dim=8, max_len=10)
        assert model.num_entities == graph_dataset.knowledge_graph.num_entities
        assert len(model.kg_triples) == \
            graph_dataset.knowledge_graph.num_triples

    def test_entity_bounds(self):
        with pytest.raises(ValueError, match="num_entities"):
            _tiny_ktup(num_entities=3)

    def test_fm_concept_rows_validated(self):
        with pytest.raises(ValueError, match="rows"):
            FM(num_items=5, item_concepts=np.zeros((3, 7), dtype=np.float32))

    def test_kg_weight_zero_skips_kg_batches(self):
        model = _tiny_ktup(kg_weight=0.0)
        model._train_sequences = [np.array([1, 2, 3, 4, 5], dtype=np.int64)]
        model._train_batch_size = 4
        batch = next(model.training_batches(np.random.default_rng(0)))
        assert batch[-1] is None
        assert np.isfinite(model.training_loss(batch).data)


class TestServing:
    @pytest.fixture(scope="class", params=["KTUP", "FM"])
    def trained(self, request, graph_dataset, graph_split):
        set_seed(0)
        cls = {"KTUP": KTUP, "FM": FM}[request.param]
        model = cls.from_dataset(graph_dataset, dim=16, max_len=10)
        model.fit(graph_dataset, graph_split,
                  TrainConfig(epochs=1, batch_size=32, eval_every=10,
                              patience=0, seed=0))
        model.eval()
        return model

    def test_registered_for_serving(self):
        assert "KTUP" in servable_models()
        assert "FM" in servable_models()

    def test_export_load_round_trip(self, trained, tmp_path):
        path = export_artifact(trained, tmp_path / "model.npz")
        loaded = load_artifact(path)
        assert type(loaded) is type(trained)
        inputs = np.zeros((2, trained.max_len), dtype=np.int64)
        inputs[0, -3:] = [1, 2, 3]
        inputs[1, -1] = 5
        np.testing.assert_array_equal(trained.sequence_output(inputs).data,
                                      loaded.sequence_output(inputs).data)

    def test_served_evaluator_parity(self, trained, tmp_path, graph_dataset,
                                     graph_split):
        path = export_artifact(trained, tmp_path / "model.npz")
        engine = RecommendationEngine(load_artifact(path))
        evaluator = validation_evaluator(graph_dataset, graph_split, seed=5)
        model_report = evaluator.evaluate(trained, stage="test")
        engine_report = evaluator.evaluate(engine, stage="test")
        assert dataclasses.asdict(model_report) == \
            dataclasses.asdict(engine_report)

    def test_recommendations_are_items_only(self, trained):
        """KTUP's attribute entities must never appear in served top-K."""
        engine = RecommendationEngine(trained)
        engine.set_history(0, [1, 2, 3])
        for item, _ in engine.recommend(0, k=10):
            assert 1 <= item <= trained.num_items

    def test_ktup_export_preserves_triples(self, graph_dataset, tmp_path):
        set_seed(0)
        model = KTUP.from_dataset(graph_dataset, dim=8, max_len=10)
        path = export_artifact(model, tmp_path / "ktup.npz")
        loaded = load_artifact(path)
        np.testing.assert_array_equal(loaded.kg_triples, model.kg_triples)
        assert loaded.num_relations == model.num_relations
