"""Scoring semantics shared across recommenders."""

import numpy as np
import pytest

from repro.models import GRU4Rec, SASRec
from repro.core import ISRec, ISRecConfig
from repro.utils import set_seed


class TestScoreSemantics:
    @pytest.mark.parametrize("factory", [
        lambda ds: SASRec(ds.num_items, dim=16, max_len=8),
        lambda ds: GRU4Rec(ds.num_items, dim=16, max_len=8),
        lambda ds: ISRec.from_dataset(ds, max_len=8, config=ISRecConfig(dim=16)),
    ], ids=["SASRec", "GRU4Rec", "ISRec"])
    def test_scores_depend_on_history(self, tiny_dataset, factory):
        set_seed(0)
        model = factory(tiny_dataset)
        model.eval()
        candidates = np.tile(np.arange(1, 6), (1, 1))
        history_a = np.zeros((1, 8), dtype=np.int64)
        history_a[0, -2:] = [1, 2]
        history_b = np.zeros((1, 8), dtype=np.int64)
        history_b[0, -2:] = [3, 4]
        scores_a = model.score(np.array([0]), history_a, candidates)
        scores_b = model.score(np.array([0]), history_b, candidates)
        assert not np.allclose(scores_a, scores_b)

    @pytest.mark.parametrize("factory", [
        lambda ds: SASRec(ds.num_items, dim=16, max_len=8),
        lambda ds: ISRec.from_dataset(ds, max_len=8, config=ISRecConfig(dim=16)),
    ], ids=["SASRec", "ISRec"])
    def test_candidate_order_irrelevant(self, tiny_dataset, factory):
        """Scores are per-candidate: permuting candidates permutes scores."""
        set_seed(0)
        model = factory(tiny_dataset)
        model.eval()
        history = np.zeros((1, 8), dtype=np.int64)
        history[0, -3:] = [1, 2, 3]
        candidates = np.arange(1, 9).reshape(1, -1)
        base = model.score(np.array([0]), history, candidates)[0]
        permutation = np.random.default_rng(0).permutation(8)
        permuted = model.score(np.array([0]), history,
                               candidates[:, permutation])[0]
        np.testing.assert_allclose(permuted, base[permutation], rtol=1e-5)

    def test_batch_independence(self, tiny_dataset):
        """Each row of a batch is scored independently."""
        set_seed(0)
        model = SASRec(tiny_dataset.num_items, dim=16, max_len=8)
        model.eval()
        histories = np.zeros((2, 8), dtype=np.int64)
        histories[0, -1] = 1
        histories[1, -1] = 2
        candidates = np.tile(np.arange(1, 6), (2, 1))
        batch = model.score(np.arange(2), histories, candidates)
        solo = model.score(np.array([0]), histories[:1], candidates[:1])
        np.testing.assert_allclose(batch[0], solo[0], rtol=1e-5)
