"""Correctness of the specialised training losses."""

import numpy as np
import pytest

from repro.models import BPRMF, Caser, GRU4RecPlus, NCF
from repro.tensor import functional as F
from repro.utils import set_seed


class TestGRU4RecPlusLoss:
    def test_negative_rows_align_with_positions(self, tiny_dataset, tiny_split):
        """Each kept position must read the negatives of *its own* batch row."""
        set_seed(0)
        model = GRU4RecPlus(tiny_dataset.num_items, dim=16, max_len=6,
                            num_negatives=4)
        model._train_sequences = tiny_split.train_sequences()
        users, inputs, targets, mask, negatives = next(iter(
            model.training_batches(np.random.default_rng(0))))
        kept = np.flatnonzero(mask.reshape(-1) > 0)
        rows = (kept // targets.shape[1]).astype(np.int64)
        # Row indices must be within the batch and non-decreasing per row.
        assert rows.max() < len(users)
        assert (np.diff(rows) >= 0).all()

    def test_loss_lower_when_positives_score_higher(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = GRU4RecPlus(tiny_dataset.num_items, dim=16, max_len=6)
        model._train_sequences = tiny_split.train_sequences()
        batch = next(iter(model.training_batches(np.random.default_rng(0))))
        base = float(model.training_loss(batch).data)
        # Boost the embedding of every target item: positives score higher.
        _users, _inputs, targets, mask, _negatives = batch
        for item in np.unique(targets[mask > 0]):
            model.item_embedding.weight.data[item] *= 5.0
        boosted = float(model.training_loss(batch).data)
        assert np.isfinite(base) and np.isfinite(boosted)


class TestPairwiseLossSanity:
    def test_bprmf_loss_decreases_over_steps(self, tiny_dataset, tiny_split):
        from repro.optim import Adam

        set_seed(0)
        model = BPRMF(tiny_dataset.num_users, tiny_dataset.num_items, dim=16)
        model._train_sequences = tiny_split.train_sequences()
        optimizer = Adam(model.parameters(), lr=5e-3)
        rng = np.random.default_rng(0)
        first = None
        last = None
        for _ in range(5):
            for batch in model.training_batches(rng):
                optimizer.zero_grad()
                loss = model.training_loss(batch)
                loss.backward()
                optimizer.step()
                if first is None:
                    first = float(loss.data)
                last = float(loss.data)
        assert last < first

    def test_ncf_loss_is_finite_balanced(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = NCF(tiny_dataset.num_users, tiny_dataset.num_items, dim=16,
                    num_negatives=2)
        model._train_sequences = tiny_split.train_sequences()
        batch = next(iter(model.training_batches(np.random.default_rng(0))))
        loss = float(model.training_loss(batch).data)
        # Untrained BCE with 2 negatives per positive starts near ln(2).
        assert 0.3 < loss < 1.5


class TestCaserLoss:
    def test_window_targets_never_padding(self, tiny_dataset, tiny_split):
        model = Caser(tiny_dataset.num_users, tiny_dataset.num_items, dim=16,
                      window=4)
        model._build_windows(tiny_split.train_sequences())
        _users, windows, targets = model._windows
        assert (targets > 0).all()
        assert windows.shape[1] == 4

    def test_windows_precede_target(self, tiny_dataset, tiny_split):
        model = Caser(tiny_dataset.num_users, tiny_dataset.num_items, dim=16,
                      window=3)
        train = tiny_split.train_sequences()
        model._build_windows(train)
        users, windows, targets = model._windows
        for user, window, target in list(zip(users, windows, targets))[:25]:
            seq = list(train[int(user)])
            target_pos = None
            # Locate the target occurrence whose preceding items match.
            for position in range(1, len(seq)):
                if seq[position] == target:
                    preceding = ([0] * 3 + seq)[position:position + 3]
                    if list(window) == preceding:
                        target_pos = position
                        break
            assert target_pos is not None
