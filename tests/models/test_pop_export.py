"""PopRec serving-fallback API: counts, updates, top-K, checksummed export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.pop import POP_EXPORT_KIND, PopRec
from repro.utils.faults import corrupt_file
from repro.utils.serialization import CheckpointIntegrityError


class TestFromCounts:
    def test_builds_ready_model(self):
        model = PopRec.from_counts([0, 3, 1, 2])
        assert model.num_items == 3
        assert model.topk(3) == [(1, 3.0), (3, 2.0), (2, 1.0)]

    def test_padding_never_recommended(self):
        model = PopRec.from_counts([99, 0, 0])  # huge padding count
        items = [item for item, _count in model.topk(3)]
        assert 0 not in items

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="counts"):
            PopRec.from_counts([1.0])


class TestUpdateAndTopK:
    def test_update_shifts_ranking(self):
        model = PopRec.from_counts(np.zeros(5))
        model.update([2, 2, 3])
        assert [item for item, _c in model.topk(2)] == [2, 3]
        model.update([4], amount=5.0)
        assert model.topk(1) == [(4, 5.0)]

    def test_update_ignores_padding_and_out_of_range(self):
        model = PopRec.from_counts(np.zeros(4))
        model.update([0, -3, 99, 1])
        assert model.topk(1) == [(1, 1.0)]

    def test_ties_break_by_ascending_item_id(self):
        model = PopRec.from_counts(np.zeros(6))
        assert [item for item, _c in model.topk(5)] == [1, 2, 3, 4, 5]

    def test_exclude_suppresses_seen_items(self):
        model = PopRec.from_counts([0, 5, 4, 3])
        items = [item for item, _c in model.topk(3, exclude=[1, 2])]
        assert items == [3]

    def test_k_clamps_to_vocabulary(self):
        model = PopRec.from_counts([0, 1, 2])
        assert len(model.topk(50)) == 2
        assert model.topk(0) == []


class TestExportRoundTrip:
    def test_save_load_preserves_ranking(self, tmp_path):
        model = PopRec.from_counts([0, 7, 1, 4, 4], max_len=9)
        path = model.save(tmp_path / "pop.npz")
        restored = PopRec.load(path)
        assert restored.num_items == model.num_items
        assert restored.max_len == 9
        assert restored.topk(4) == model.topk(4)

    def test_load_rejects_wrong_kind(self, tmp_path, frozen_artifact=None):
        from repro.utils.serialization import write_npz_atomic

        path = write_npz_atomic(tmp_path / "other.npz",
                                {"popularity": np.zeros(3)},
                                {"kind": "something_else"})
        with pytest.raises(CheckpointIntegrityError, match="popularity"):
            PopRec.load(path)

    def test_load_rejects_corrupted_export(self, tmp_path):
        model = PopRec.from_counts(np.arange(64, dtype=np.float64))
        path = model.save(tmp_path / "pop.npz")
        corrupt_file(path)
        with pytest.raises(CheckpointIntegrityError):
            PopRec.load(path)

    def test_export_kind_constant(self):
        assert POP_EXPORT_KIND == "popularity_export"
