"""Model-specific behaviours beyond the shared contract."""

import numpy as np
import pytest

from repro.models import (
    BERT4Rec,
    BPRMF,
    Caser,
    DGCF,
    FPMC,
    GRU4RecPlus,
    PopRec,
    SASRec,
)
from repro.models.base import SequenceRecommender
from repro.tensor import Tensor
from repro.utils import set_seed


class TestPopRec:
    def test_scores_are_popularity(self, tiny_dataset, tiny_split):
        model = PopRec()
        model.fit(tiny_dataset, tiny_split)
        counts = np.zeros(tiny_dataset.num_items + 1)
        for seq in tiny_split.train_sequences():
            np.add.at(counts, seq, 1)
        candidates = np.array([[1, 2, 3]])
        scores = model.score(np.array([0]), np.zeros((1, 5), dtype=np.int64),
                             candidates)
        np.testing.assert_allclose(scores[0], counts[[1, 2, 3]])

    def test_score_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PopRec().score(np.array([0]), np.zeros((1, 5), dtype=np.int64),
                           np.array([[1]]))


class TestSASRec:
    def test_causal_scoring_ignores_padding_only_prefix(self, tiny_dataset):
        set_seed(0)
        model = SASRec(tiny_dataset.num_items, dim=16, max_len=8)
        model.eval()
        short = np.zeros((1, 8), dtype=np.int64)
        short[0, -2:] = [1, 2]
        longer_padding = np.zeros((1, 8), dtype=np.int64)
        longer_padding[0, -2:] = [1, 2]
        a = model.sequence_output(short).data[0, -1]
        b = model.sequence_output(longer_padding).data[0, -1]
        np.testing.assert_allclose(a, b, atol=1e-5)

    def test_rejects_too_long_inputs(self, tiny_dataset):
        model = SASRec(tiny_dataset.num_items, dim=16, max_len=4)
        with pytest.raises(ValueError):
            model.sequence_output(np.ones((1, 9), dtype=np.int64))

    def test_order_matters(self, tiny_dataset):
        set_seed(0)
        model = SASRec(tiny_dataset.num_items, dim=16, max_len=6)
        model.eval()
        seq = np.array([[0, 0, 1, 2, 3, 4]])
        rev = np.array([[0, 0, 4, 3, 2, 1]])
        a = model.sequence_output(seq).data[0, -1]
        b = model.sequence_output(rev).data[0, -1]
        assert not np.allclose(a, b, atol=1e-4)

    def test_padding_column_suppressed_in_logits(self, tiny_dataset):
        model = SASRec(tiny_dataset.num_items, dim=16, max_len=6)
        states = model.sequence_output(np.array([[0, 0, 0, 1, 2, 3]]))
        logits = model.all_item_logits(states)
        assert (logits.data[..., 0] < -1e8).all()


class TestBERT4Rec:
    def test_mask_token_is_extra_row(self, tiny_dataset):
        model = BERT4Rec(tiny_dataset.num_items, dim=16, max_len=8)
        assert model.mask_token == tiny_dataset.num_items + 1
        assert model.item_embedding.num_embeddings == tiny_dataset.num_items + 2

    def test_append_mask(self, tiny_dataset):
        model = BERT4Rec(tiny_dataset.num_items, dim=16, max_len=4)
        inputs = np.array([[0, 1, 2, 3]])
        masked = model._append_mask(inputs)
        np.testing.assert_array_equal(masked, [[1, 2, 3, model.mask_token]])

    def test_invalid_mask_prob(self, tiny_dataset):
        with pytest.raises(ValueError):
            BERT4Rec(tiny_dataset.num_items, mask_prob=0.0)

    def test_cloze_loss_runs(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = BERT4Rec(tiny_dataset.num_items, dim=16, max_len=8)
        model._train_sequences = tiny_split.train_sequences()
        rng = np.random.default_rng(0)
        batch = next(iter(model.training_batches(rng)))
        loss = model.training_loss(batch)
        assert np.isfinite(float(loss.data))


class TestGRU4RecPlus:
    def test_batches_include_negatives(self, tiny_dataset, tiny_split):
        model = GRU4RecPlus(tiny_dataset.num_items, dim=16, max_len=8,
                            num_negatives=7)
        model._train_sequences = tiny_split.train_sequences()
        batch = next(iter(model.training_batches(np.random.default_rng(0))))
        assert len(batch) == 5
        negatives = batch[4]
        assert negatives.shape[1] == 7
        assert negatives.min() >= 1

    def test_loss_finite(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = GRU4RecPlus(tiny_dataset.num_items, dim=16, max_len=8)
        model._train_sequences = tiny_split.train_sequences()
        batch = next(iter(model.training_batches(np.random.default_rng(0))))
        assert np.isfinite(float(model.training_loss(batch).data))


class TestFPMC:
    def test_uses_last_item(self, tiny_dataset, tiny_split):
        set_seed(0)
        model = FPMC(tiny_dataset.num_users, tiny_dataset.num_items, dim=16)
        model.fit(tiny_dataset, tiny_split,
                  train_config=__import__("repro.train", fromlist=["TrainConfig"]).TrainConfig(
                      epochs=1, eval_every=10, patience=0))
        inputs_a = np.zeros((1, 5), dtype=np.int64)
        inputs_a[0, -1] = 1
        inputs_b = np.zeros((1, 5), dtype=np.int64)
        inputs_b[0, -1] = 2
        candidates = np.array([[3, 4, 5]])
        users = np.array([0])
        scores_a = model.score(users, inputs_a, candidates)
        scores_b = model.score(users, inputs_b, candidates)
        assert not np.allclose(scores_a, scores_b)


class TestDGCF:
    def test_dim_divisible_validation(self):
        with pytest.raises(ValueError):
            DGCF(10, 10, dim=30, num_factors=4)

    def test_propagate_requires_fit(self):
        model = DGCF(10, 10, dim=16, num_factors=4)
        with pytest.raises(RuntimeError):
            model.propagate()

    def test_propagation_shapes(self, tiny_dataset, tiny_split):
        from repro.train import TrainConfig

        set_seed(0)
        model = DGCF(tiny_dataset.num_users, tiny_dataset.num_items, dim=16,
                     num_factors=4, routing_iterations=1)
        model.fit(tiny_dataset, tiny_split,
                  TrainConfig(epochs=1, eval_every=10, patience=0))
        users, items = model.propagate()
        assert users.shape == (tiny_dataset.num_users, 16)
        assert items.shape == (tiny_dataset.num_items + 1, 16)


class TestCaser:
    def test_window_building(self, tiny_dataset, tiny_split):
        model = Caser(tiny_dataset.num_users, tiny_dataset.num_items,
                      dim=16, window=3)
        model._build_windows(tiny_split.train_sequences())
        users, windows, targets = model._windows
        assert windows.shape[1] == 3
        assert len(users) == len(targets)
        # Every target must follow its window chronologically.
        seq = tiny_split.train_sequence(int(users[0]))
        assert targets[0] in seq

    def test_training_batches_require_fit(self, tiny_dataset):
        model = Caser(tiny_dataset.num_users, tiny_dataset.num_items, dim=16)
        with pytest.raises(RuntimeError):
            next(iter(model.training_batches(np.random.default_rng(0))))


class TestBPRMF:
    def test_item_bias_used(self, tiny_dataset, tiny_split):
        from repro.train import TrainConfig

        set_seed(0)
        model = BPRMF(tiny_dataset.num_users, tiny_dataset.num_items, dim=16)
        model.fit(tiny_dataset, tiny_split,
                  TrainConfig(epochs=1, eval_every=10, patience=0))
        model.item_bias.data[5] += 100.0
        scores = model.score(np.array([0]), np.zeros((1, 4), dtype=np.int64),
                             np.array([[5, 6]]))
        assert scores[0, 0] > scores[0, 1]


class TestSequenceRecommenderBase:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SASRec(0, dim=16)

    def test_training_batches_before_fit(self, tiny_dataset):
        model = SASRec(tiny_dataset.num_items, dim=16)
        with pytest.raises(RuntimeError):
            next(iter(model.training_batches(np.random.default_rng(0))))
