"""Edge cases of the analysis diagnostics."""

import numpy as np
import pytest

from repro.analysis import (
    concept_activation_distribution,
    transition_smoothness,
)
from repro.core import ISRec, ISRecConfig
from repro.utils import set_seed


class TestDiagnosticsEdges:
    def test_subset_of_users(self, tiny_dataset):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        few = concept_activation_distribution(model, tiny_dataset, users=[0, 1])
        assert few.shape == (tiny_dataset.num_concepts,)
        assert few.sum() == pytest.approx(1.0)

    def test_single_user_smoothness(self, tiny_dataset):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        value = transition_smoothness(model, tiny_dataset, users=[0])
        assert 0.0 <= value <= 1.0

    def test_distribution_deterministic_in_eval(self, tiny_dataset):
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16))
        model.eval()
        a = concept_activation_distribution(model, tiny_dataset, users=[0, 1, 2])
        b = concept_activation_distribution(model, tiny_dataset, users=[0, 1, 2])
        np.testing.assert_array_equal(a, b)

    def test_distribution_support_limited_by_lambda(self, tiny_dataset):
        """With λ active concepts per step, at most λ * steps concepts can
        carry mass; the distribution must never have more nonzero entries
        than total activations."""
        set_seed(0)
        model = ISRec.from_dataset(tiny_dataset, max_len=8,
                                   config=ISRecConfig(dim=16, num_intents=2))
        distribution = concept_activation_distribution(model, tiny_dataset,
                                                       users=[0])
        steps = min(len(tiny_dataset.sequences[0]), 8)
        assert (distribution > 0).sum() <= 2 * steps
