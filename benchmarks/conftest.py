"""Benchmark configuration.

Every benchmark regenerates one table or figure of the paper and prints it
in the paper's layout.  The workload size is controlled by the
``REPRO_BENCH`` environment variable:

- ``smoke``    — miniature datasets, 3 epochs (seconds per bench; CI).
- ``standard`` — 60%-scale datasets, 40 epochs (default; minutes per bench).
- ``full``     — full profiles, 100 epochs (the numbers quoted in
  EXPERIMENTS.md; tens of minutes for Table 2).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig

PRESETS: dict[str, dict] = {
    "smoke": dict(scale=0.35, config=dict(dim=16, epochs=3, eval_every=2,
                                          patience=1, num_negatives=30)),
    "standard": dict(scale=0.7, config=dict(dim=48, epochs=35, eval_every=5,
                                            patience=2)),
    "full": dict(scale=1.0, config=dict(dim=48, epochs=100, eval_every=5,
                                        patience=4)),
}


def preset_name() -> str:
    name = os.environ.get("REPRO_BENCH", "standard")
    if name not in PRESETS:
        raise KeyError(f"REPRO_BENCH must be one of {sorted(PRESETS)}, got {name!r}")
    return name


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return PRESETS[preset_name()]["scale"]


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig(**PRESETS[preset_name()]["config"])


@pytest.fixture(scope="session")
def bench_preset() -> str:
    return preset_name()


@pytest.fixture(scope="session")
def shape_checks() -> bool:
    """Whether the paper-shape assertions are meaningful.

    ``smoke`` runs train for 3 epochs on miniature data: they only validate
    the plumbing, not the science, so shape assertions are skipped.
    """
    return preset_name() != "smoke"


def emit(title: str, body: str) -> None:
    """Print a regenerated artefact under a clear banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}  [REPRO_BENCH={preset_name()}]\n{banner}\n{body}\n")
