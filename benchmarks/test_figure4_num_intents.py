"""Benchmark: regenerate Figure 4 — number of activated intents (lambda) sweep.

Shape being reproduced (§4.6.2): too few simultaneous intents is
under-expressive and too many is noisy; the peak sits at a moderate lambda
(10-15 of 592 concepts in the paper; proportionally ~3-8 of our ~35-concept
vocabulary).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import run_figure4

LAMBDAS = [1, 3, 5, 8, 15]


@pytest.mark.benchmark(group="figure4")
def test_figure4_activated_intents(benchmark, bench_config, bench_scale,
                                   shape_checks):
    outcome = benchmark.pedantic(
        lambda: run_figure4(lambdas=LAMBDAS, profile="beauty",
                            config=bench_config, scale=bench_scale,
                            progress=True),
        rounds=1, iterations=1,
    )
    emit("Figure 4 — number of activated intents lambda", outcome.render())

    if not shape_checks:
        return
    series = dict(outcome.series("HR@10"))
    middle = max(series[3], series[5], series[8])
    assert middle >= series[1] * 0.98, "lambda=1 should not dominate"
    assert middle >= series[15] * 0.98, "very large lambda should not dominate"
