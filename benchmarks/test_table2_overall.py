"""Benchmark: regenerate Table 2 — overall performance comparison.

Paper shape being reproduced (§4.3):

- ISRec is the best model on (nearly) every dataset x metric cell;
- attention baselines (SASRec, BERT4Rec) are the strongest baselines;
- non-sequential models (BPR-MF, NCF) trail the sequential ones;
- PopRec is far below everything;
- ISRec's relative improvement is larger on the sparse datasets
  (Beauty/Steam/Epinions) than on the dense MovieLens profiles.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import run_table2

PROFILES = ["beauty", "steam", "epinions", "ml-1m", "ml-20m"]


@pytest.mark.benchmark(group="table2")
def test_table2_overall_comparison(benchmark, bench_config, bench_scale,
                                   shape_checks):
    outcome = benchmark.pedantic(
        lambda: run_table2(profiles=PROFILES, config=bench_config,
                           scale=bench_scale, progress=True),
        rounds=1, iterations=1,
    )
    emit("Table 2 — overall performance comparison", outcome.render())

    if not shape_checks:
        return
    SPARSE = ("beauty", "steam", "epinions")
    for profile in PROFILES:
        reports = outcome.results[profile]
        # PopRec must be the weakest method by a wide margin.
        pop = reports["PopRec"].hr10
        isrec = reports["ISRec"].hr10
        assert isrec > 2 * pop, f"{profile}: ISRec {isrec} vs PopRec {pop}"
        best = max(report.hr10 for report in reports.values())
        # ISRec must be at or near the top.  The margin mirrors the paper:
        # large, reliable gains on the sparse datasets; small gains (+1-6%,
        # within seed noise at this scale) on the dense MovieLens profiles.
        floor = 0.92 if profile in SPARSE else 0.78
        assert isrec >= floor * best, (
            f"{profile}: ISRec HR@10 {isrec:.4f} below {floor:.2f} x best {best:.4f}"
        )
    # Headline shape ("outperforms all baselines consistently"): averaged
    # over the five datasets, ISRec leads on ranking quality (NDCG@10) —
    # allowing a statistical tie (3%) with the strongest attention baseline,
    # which is the resolution this scale supports.
    models = set.intersection(*(set(reports) for reports in outcome.results.values()))
    mean_ndcg = {name: sum(outcome.results[p][name].ndcg10 for p in PROFILES) / len(PROFILES)
                 for name in models}
    best_mean = max(mean_ndcg.values())
    assert mean_ndcg["ISRec"] >= 0.97 * best_mean, (
        f"ISRec mean NDCG@10 {mean_ndcg['ISRec']:.4f} not within 3% of the "
        f"best mean {best_mean:.4f}"
    )
    for baseline in ("PopRec", "BPR-MF", "NCF", "FPMC", "GRU4Rec",
                     "GRU4Rec+", "DGCF", "Caser"):
        if baseline in mean_ndcg:
            assert mean_ndcg["ISRec"] > mean_ndcg[baseline], (
                f"ISRec mean NDCG@10 {mean_ndcg['ISRec']:.4f} does not beat "
                f"{baseline} ({mean_ndcg[baseline]:.4f})"
            )
