"""Benchmark: regenerate Table 5 — ablation of intent extraction + transition.

Shape being reproduced (§4.5): full ISRec > w/o GNN > w/o GNN&Intent, and
ISRec also beats the concept-augmented strongest baselines, showing the
gain is not just from the extra concept features.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import run_table5

PROFILES = ["beauty", "ml-1m"]


@pytest.mark.benchmark(group="table5")
def test_table5_ablation(benchmark, bench_config, bench_scale, shape_checks):
    outcome = benchmark.pedantic(
        lambda: run_table5(profiles=PROFILES, config=bench_config,
                           scale=bench_scale, progress=True),
        rounds=1, iterations=1,
    )
    emit("Table 5 — ablation study", outcome.render())

    if not shape_checks:
        return
    for profile in PROFILES:
        block = outcome.results[profile]
        full = block["ISRec"].hr10
        plain = block["w/o GNN&Intent"].hr10
        # Per profile the gap can sit inside seed noise (the paper's ML-1m
        # gain is +4%); require no large regression...
        assert full >= plain * 0.93, (
            f"{profile}: full ISRec {full:.4f} below w/o GNN&Intent {plain:.4f}"
        )
        for baseline in ("BERT4Rec + concept", "SASRec + concept"):
            assert full >= block[baseline].hr10 * 0.90, (
                f"{profile}: ISRec {full:.4f} vs {baseline} {block[baseline].hr10:.4f}"
            )
    # ...and require the paper's ordering on average across the profiles.
    def mean_hr10(variant: str) -> float:
        return sum(outcome.results[p][variant].hr10 for p in PROFILES) / len(PROFILES)

    assert mean_hr10("ISRec") >= mean_hr10("w/o GNN&Intent") * 0.98, (
        "intent machinery should not hurt on average: "
        f"{mean_hr10('ISRec'):.4f} vs {mean_hr10('w/o GNN&Intent'):.4f}"
    )
