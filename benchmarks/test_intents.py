"""Benchmark: the intent-objectives sweep + the contrastive kernel.

Shape being reproduced (``docs/training-objectives.md``): the
intent-contrastive auxiliary loss is a cheap add-on (the fused InfoNCE
kernel must not dominate a training step), and the session evaluation
splits into boundary vs within-session groups with boundary strictly
harder on coherent session data.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments import run_intent_objectives
from repro.tensor import Tensor, functional as F
from repro.tensor import fused

PROFILES = ["epinions", "beauty"]


@pytest.mark.benchmark(group="intents")
def test_intent_objectives_sweep(benchmark, bench_config, bench_scale,
                                 shape_checks):
    outcome = benchmark.pedantic(
        lambda: run_intent_objectives(profiles=PROFILES, config=bench_config,
                                      scale=bench_scale, progress=True),
        rounds=1, iterations=1,
    )
    emit("Intent objectives — baseline vs contrastive vs session eval",
         outcome.render())

    for profile in PROFILES:
        session = outcome.session_report(profile)
        assert session is not None and session["num_boundary"] > 0
    if not shape_checks:
        return
    # Boundary predictions (intent just shifted) are harder than
    # within-session ones on at least one coherent-session profile.
    gaps = []
    for profile in PROFILES:
        session = outcome.session_report(profile)
        if session["boundary"] and session["within"]:
            gaps.append(session["within"]["HR@10"]
                        - session["boundary"]["HR@10"])
    assert gaps and max(gaps) > 0


@pytest.mark.benchmark(group="intents")
def test_fused_info_nce_vs_composed(benchmark):
    """The fused kernel must not lose to the composed reference."""
    rng = np.random.default_rng(0)
    batch, dim = 128, 48
    anchors_data = rng.normal(size=(batch, dim)).astype(np.float64)
    positives_data = rng.normal(size=(batch, dim)).astype(np.float64)

    def step(op):
        anchors = Tensor(anchors_data, requires_grad=True)
        positives = Tensor(positives_data, requires_grad=True)
        op(anchors, positives, temperature=0.2).backward()

    def timed(op, repeats=30):
        step(op)  # warm up
        start = time.perf_counter()
        for _ in range(repeats):
            step(op)
        return (time.perf_counter() - start) / repeats

    composed_s = timed(F.info_nce_composed)
    fused_s = benchmark.pedantic(lambda: timed(fused.info_nce),
                                 rounds=1, iterations=1)
    ratio = composed_s / fused_s
    emit("Fused vs composed InfoNCE",
         f"batch={batch} dim={dim}: fused {fused_s * 1e6:.1f}us  "
         f"composed {composed_s * 1e6:.1f}us  ratio {ratio:.2f}x")
    # Forward+backward agreement is pinned by tests; here just require the
    # fused path to be at least comparable (no perf regression).
    assert ratio > 0.8
