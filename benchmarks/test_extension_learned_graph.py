"""Extension bench: fixed ConceptNet-style graph vs learned relations.

The paper notes (§3.5) ISRec "can also be extended to ... learning the
relation".  This bench trains both variants and reports the comparison.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import emit
from repro.core import ISRecConfig
from repro.experiments import prepare, run_model
from repro.utils.tables import ResultTable

PROFILE = "beauty"


@pytest.mark.benchmark(group="extension")
def test_extension_learned_intention_graph(benchmark, bench_config, bench_scale):
    dataset, split, evaluator = prepare(PROFILE, bench_config, scale=bench_scale)
    base = ISRecConfig(dim=bench_config.dim)
    variants = {
        "fixed graph (paper)": replace(base, graph_mode="fixed"),
        "learned graph (ext)": replace(base, graph_mode="learned"),
    }

    def run_all():
        results = {}
        for label, isrec_config in variants.items():
            run = run_model("ISRec", dataset, split, evaluator, bench_config,
                            isrec_config=isrec_config)
            results[label] = run.report
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = ResultTable(["Variant", "HR@10", "NDCG@10", "MRR"],
                        title="Extension — fixed vs learned intention graph")
    for label, report in results.items():
        table.add_row([label, report.hr10, report.ndcg10, report.mrr])
    emit("Extension — learned intention graph", table.render())

    for report in results.values():
        assert report.hr10 > 0.0
