"""Fused-kernel benchmark: regenerates ``BENCH_kernels.json`` at the repo root.

Times the train-step / eval hot paths and the per-op microbenches under the
fused and composed kernel paths (see ``repro/utils/bench.py`` and
``docs/performance.md``).  The workload follows ``REPRO_BENCH``:

- ``smoke``    — miniature shapes, plumbing check (seconds).
- ``standard`` — the default ISRec-sized shapes recorded in the committed
  ``BENCH_kernels.json`` (a minute or two).
- ``full``     — same shapes, more repetitions for tighter best-of timings.
"""

from __future__ import annotations

import pathlib

import pytest

from benchmarks.conftest import emit, preset_name
from repro.utils import bench

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

RUNS = {
    "smoke": dict(preset="smoke", repeats=3),
    "standard": dict(preset="default", repeats=5),
    "full": dict(preset="default", repeats=9),
}


@pytest.mark.bench
def test_kernel_bench_records_baseline():
    run = RUNS[preset_name()]
    results = bench.run_kernel_bench(preset=run["preset"], repeats=run["repeats"])
    out_path = REPO_ROOT / "BENCH_kernels.json"
    bench.write_bench(results, str(out_path))
    emit("Fused-kernel benchmark (BENCH_kernels.json)",
         bench.format_summary(results))

    assert results["schema"] == bench.SCHEMA
    for section in ("train_step", "eval_forward"):
        for path in ("composed", "fused"):
            assert results[section][path]["wall_time_s"] > 0
            assert results[section][path]["tensor_allocs"] > 0
    assert set(results["micro"]) == {
        "softmax", "log_softmax", "cross_entropy", "attention", "layer_norm",
    }
    # The fused path must never regress below the composed reference, and it
    # always materialises strictly fewer tensor temporaries.
    assert results["train_step"]["speedup"] >= 1.0
    assert (results["train_step"]["fused"]["tensor_allocs"]
            < results["train_step"]["composed"]["tensor_allocs"])
