"""Parallel-training benchmark: regenerates ``BENCH_parallel.json``.

Times single-process, prefetch-overlapped, and 1/2/4-worker data-parallel
training of the synthetic SASRec workload (see ``repro/parallel/bench.py``
and ``docs/parallelism.md``).  The workload follows ``REPRO_BENCH``:

- ``smoke``    — miniature shapes, 2 workers max, plumbing check.
- ``standard`` — the ML-1M-scale shapes recorded in the committed
  ``BENCH_parallel.json``.
- ``full``     — same shapes, up to 8 workers.

The speedup achievable is bounded by the machine's CPU budget, which the
document records (``environment.cpu_count`` / ``cpu_affinity``): on a
single-core container the multi-worker rows measure synchronisation
overhead, not speedup, so no speedup floor is asserted there.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from benchmarks.conftest import emit, preset_name
from repro.parallel import bench

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

RUNS = {
    "smoke": dict(preset="smoke", workers=[1, 2]),
    "standard": dict(preset="default", workers=[1, 2, 4]),
    "full": dict(preset="default", workers=[1, 2, 4, 8]),
}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.mark.bench
def test_parallel_bench_records_baseline():
    run = RUNS[preset_name()]
    results = bench.run_parallel_bench(preset=run["preset"],
                                       workers=run["workers"])
    out_path = REPO_ROOT / "BENCH_parallel.json"
    bench.write_bench(results, str(out_path))
    emit("Parallel-training benchmark (BENCH_parallel.json)",
         bench.format_summary(results))

    assert results["schema"] == bench.SCHEMA
    assert results["single_process"]["wall_time_s"] > 0
    for world, row in results["data_parallel"].items():
        assert row["wall_time_s"] > 0
        # Equivalence cross-check: the deterministic-forward workload must
        # land on the single-process loss curve in every configuration.
        assert row["loss_matches_single"] is True, (
            f"{world}-worker run diverged from the single-process loss")
    # Speedup floors only make sense when the cores exist to deliver them:
    # ISSUE targets >=1.8x at 4 workers on a >=4-core machine.
    cores = _available_cores()
    for world, row in results["data_parallel"].items():
        if int(world) > 1 and cores >= 2 * int(world):
            assert row["speedup_vs_single"] >= 1.0, (
                f"{world}-worker run slower than single-process despite "
                f"{cores} available cores")
    if cores >= 4 and "4" in results["data_parallel"]:
        assert results["data_parallel"]["4"]["speedup_vs_single"] >= 1.8
