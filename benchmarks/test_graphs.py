"""Benchmark: graph emission cost + the graph-workloads comparison sweep.

Shape being reproduced (``docs/graph-workloads.md``): layering a knowledge
graph and a social graph on the simulator must be a cheap add-on — the
samplers draw from dedicated RNG streams and never touch the interaction
loop — and the ISRec-vs-structure-aware-baseline sweep must run end to
end.  The generation-cost measurements land in the committed
``BENCH_graphs.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

import numpy as np
import pytest

from benchmarks.conftest import emit, preset_name
from repro.data import load_dataset
from repro.experiments import run_graph_comparison

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SCHEMA = "bench_graphs/v1"

#: (plain base profile, graph-bearing variant) timed against each other.
PAIR = ("beauty", "beauty-kg-dense")


def _timed_generation(profile: str, scale: float, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        load_dataset(profile, scale=scale, cache=False)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="graphs")
def test_graph_generation_cost(benchmark, bench_scale):
    """Graph emission overhead over the legacy generator, recorded as the
    committed ``BENCH_graphs.json`` baseline."""
    repeats = 2 if preset_name() == "smoke" else 3
    plain_s = _timed_generation(PAIR[0], bench_scale, repeats)
    graphed_s = benchmark.pedantic(
        lambda: _timed_generation(PAIR[1], bench_scale, repeats),
        rounds=1, iterations=1)
    overhead = graphed_s / plain_s if plain_s > 0 else float("inf")

    dataset = load_dataset(PAIR[1], scale=bench_scale)
    stats = dataset.graph_statistics()
    payload = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "preset": preset_name(),
        "profiles": {"plain": PAIR[0], "graphed": PAIR[1]},
        "scale": bench_scale,
        "generation": {
            "plain_s": plain_s,
            "graphed_s": graphed_s,
            "overhead_ratio": overhead,
        },
        "graph_stats": {
            "num_entities": stats.num_entities,
            "num_relations": stats.num_relations,
            "num_triples": stats.num_triples,
            "triples_per_item": stats.triples_per_item,
            "num_social_edges": stats.num_social_edges,
            "avg_social_degree": stats.avg_social_degree,
        },
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
    }
    out_path = REPO_ROOT / "BENCH_graphs.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    emit("Graph emission cost (BENCH_graphs.json)",
         f"{PAIR[0]}: {plain_s:.3f}s   {PAIR[1]}: {graphed_s:.3f}s   "
         f"overhead {overhead:.2f}x   ({stats.num_triples} triples, "
         f"{stats.num_social_edges} social edges)")

    assert stats.num_triples > 0 and stats.num_social_edges > 0
    # Emission + 5-core remapping must stay a modest add-on to generation.
    assert overhead < 2.0


@pytest.mark.benchmark(group="graphs")
def test_graph_comparison_sweep(benchmark, bench_config, bench_scale,
                                shape_checks):
    profiles = ["beauty-kg", "beauty-kg-dense"]
    outcome = benchmark.pedantic(
        lambda: run_graph_comparison(profiles=profiles, config=bench_config,
                                     scale=bench_scale, progress=True),
        rounds=1, iterations=1)
    emit("Graph workloads — ISRec vs KTUP vs FM", outcome.render())

    for profile in profiles:
        assert set(outcome.results[profile]) == {"FM", "KTUP", "ISRec"}
        assert outcome.graph_stats[profile]["num_triples"] > 0
    if not shape_checks:
        return
    # With real training budgets every model clears the trivial floor and
    # ISRec stays competitive with the structure-aware baselines.
    for profile in profiles:
        for run in outcome.results[profile].values():
            assert run.report["HR@10"] > 0.02
        assert outcome.isrec_margin(profile) > -50.0
