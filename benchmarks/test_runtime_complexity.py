"""Runtime microbenchmarks matching the paper's complexity analysis (§3.8).

The paper derives O(n^2 d + n K d d' + lambda^2) per sequence: quadratic in
the sequence length (self-attention), linear in the concept count (the MLP
banks).  These benches time the real forward passes and check the scaling
directions.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import ISRec, ISRecConfig
from repro.data import load_dataset
from repro.utils import set_seed


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("epinions", scale=0.5)


def _forward_time(model, batch: np.ndarray, repeats: int = 3) -> float:
    model.eval()
    model.sequence_output(batch)  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        model.sequence_output(batch)
    return (time.perf_counter() - start) / repeats


@pytest.mark.benchmark(group="runtime")
def test_isrec_forward_runtime(benchmark, dataset):
    set_seed(0)
    model = ISRec.from_dataset(dataset, max_len=20, config=ISRecConfig(dim=32))
    model.eval()
    batch = np.tile(np.arange(1, 21), (32, 1))
    benchmark(lambda: model.sequence_output(batch))


@pytest.mark.benchmark(group="runtime")
def test_isrec_training_step_runtime(benchmark, dataset):
    set_seed(0)
    model = ISRec.from_dataset(dataset, max_len=16, config=ISRecConfig(dim=32))
    batch_inputs = np.tile(np.arange(1, 17), (32, 1))
    batch_targets = np.roll(batch_inputs, -1, axis=1)
    mask = np.ones_like(batch_targets, dtype=np.float32)

    def step():
        model.zero_grad()
        loss = model.training_loss((None, batch_inputs, batch_targets, mask))
        loss.backward()
        return float(loss.data)

    benchmark(step)


def test_attention_cost_grows_superlinearly_in_length(dataset):
    """§3.8: the dominant O(n^2 d) term — doubling T should much more than
    double the forward cost once n is large enough."""
    set_seed(0)
    times = {}
    for length in (16, 64):
        model = ISRec.from_dataset(dataset, max_len=length,
                                   config=ISRecConfig(dim=32))
        batch = np.tile(np.arange(1, length + 1) % dataset.num_items + 1, (16, 1))
        times[length] = _forward_time(model, batch)
    assert times[64] > 2.0 * times[16], times


def test_cost_grows_with_concept_count(dataset):
    """§3.8: the O(n K d d') term — more concepts means more MLP-bank work."""
    set_seed(0)
    num_items = dataset.num_items
    small_concepts = np.zeros((num_items + 1, 8), dtype=np.float32)
    small_concepts[1:, 0] = 1.0
    big_concepts = np.zeros((num_items + 1, 128), dtype=np.float32)
    big_concepts[1:, 0] = 1.0
    batch = np.tile(np.arange(1, 17), (16, 1))
    times = {}
    for label, concepts in (("small", small_concepts), ("big", big_concepts)):
        model = ISRec(num_items, concepts, np.eye(concepts.shape[1], dtype=np.float32),
                      max_len=16, config=ISRecConfig(dim=32))
        times[label] = _forward_time(model, batch)
    assert times["big"] > times["small"], times
