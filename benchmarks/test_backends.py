"""Backend-seam benchmark: regenerates ``BENCH_backends.json`` at the root.

Exercises every claim the backend refactor makes (see
``repro/utils/bench_backends.py`` and ``docs/performance.md``): the
float32-vs-float64 fused train step, the int8-quantized warm serving path
against the exact engine and the committed ``BENCH_serve.json`` reference,
arena-pooled allocation counts on a cold serving request, and the GEMV
dtype ladder.  The workload follows ``REPRO_BENCH``: ``smoke`` runs
miniature shapes as a plumbing check; ``standard``/``full`` run the
default ISRec-sized shapes recorded in the committed
``BENCH_backends.json``.
"""

from __future__ import annotations

import pathlib

import pytest

from benchmarks.conftest import emit, preset_name
from repro.utils import bench_backends

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

RUNS = {
    "smoke": dict(preset="smoke", repeats=3),
    "standard": dict(preset="default", repeats=5),
    "full": dict(preset="default", repeats=9),
}


@pytest.mark.bench
def test_backend_bench_records_baseline():
    run = RUNS[preset_name()]
    results = bench_backends.run_backend_bench(
        preset=run["preset"], repeats=run["repeats"],
        reference_path=REPO_ROOT / "BENCH_serve.json")
    out_path = REPO_ROOT / "BENCH_backends.json"
    bench_backends.write_bench(results, str(out_path))
    emit("Backend benchmark (BENCH_backends.json)",
         bench_backends.format_summary(results))

    assert results["schema"] == bench_backends.SCHEMA
    train, serve, arena = results["train_step"], results["serve"], results["arena"]
    # Reduced precision must actually pay on the fused train step.  The 2x
    # acceptance floor holds at the ISRec-sized default shapes; smoke
    # shapes are too small for BLAS to amortise, so only sanity-check
    # there.
    floor = 2.0 if run["preset"] == "default" else 1.0
    assert train["speedup_f32_vs_f64"] >= floor
    # Quantized warm serving must beat the exact engine...
    assert (serve["warm_int8_dequant"]["wall_time_s"]
            < serve["warm_exact"]["wall_time_s"])
    # ...while agreeing with it: top-10 overlap and ranking-metric parity.
    assert serve["topk_overlap"]["int8_dequant"]["mean"] >= 0.9
    parity = serve["ranking_metrics"]["abs_diff_dequant"]  # {hr@k, ndcg@k}
    assert all(diff <= 0.02 for diff in parity.values())
    # The quantized artifact is materially smaller than the float one.
    assert serve["artifact_bytes"]["int8"] < serve["artifact_bytes"]["float32"]
    # Arena pooling removes most seam allocations on a cold request.
    assert arena["array_alloc_reduction"] >= 0.5
    assert arena["arena"]["pool"]["hits"] > 0
