"""Benchmark: regenerate Figure 2 — intent extraction/transition showcases.

Shape being reproduced (§4.4): for sampled users, the traced intents are
readable concept names; consecutive steps share or smoothly shift intents
(graph-structured transitions); predicted next intents overlap the concepts
of what the user consumes next far above chance.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.experiments import run_figure2

PROFILES = ["beauty", "steam"]


@pytest.mark.benchmark(group="figure2")
def test_figure2_intent_showcases(benchmark, bench_config, bench_scale,
                                  shape_checks):
    outcome = benchmark.pedantic(
        lambda: run_figure2(profiles=PROFILES, users_per_profile=2,
                            config=bench_config, scale=bench_scale,
                            progress=True),
        rounds=1, iterations=1,
    )
    emit("Figure 2 — intent transition showcases", outcome.render())

    for profile in PROFILES:
        for trace in outcome.traces[profile]:
            assert len(trace.steps) >= 3
            # Intents are real concept names, constant-lambda per step.
            sizes = {len(step.activated_intents) for step in trace.steps}
            assert len(sizes) == 1
            # Transition smoothness: consecutive activated-intent sets share
            # members more often than disjoint (structured, not random).
            if shape_checks:
                overlaps = []
                for before, after in zip(trace.steps[:-1], trace.steps[1:]):
                    a = set(before.activated_intents)
                    b = set(after.activated_intents)
                    overlaps.append(len(a & b) / max(len(a), 1))
                assert np.mean(overlaps) > 0.2, (
                    f"{profile}: intent traces look unstructured "
                    f"({np.mean(overlaps):.2f})"
                )
