"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's Table 5 and probe individual mechanisms:

- **similarity**: cosine (paper) vs inner product (the mode-collapse-prone
  alternative the paper argues against in §3.4);
- **gumbel**: straight-through Gumbel top-k sampling vs deterministic top-k
  during training (Eq. 5);
- **mlp**: per-concept MLP banks of Eq. (8)/(11) vs one MLP shared by all
  concepts;
- **gcn depth**: 1 vs 2 vs 3 message-passing layers in the structured
  transition (Eq. 10).

Each bench prints the comparison table; assertions only require the runs to
be healthy (learnable, finite) rather than a fixed winner, since several of
these gaps are inside seed noise at miniature scale.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import emit
from repro.core import ISRecConfig
from repro.experiments import prepare, run_model
from repro.utils.tables import ResultTable

PROFILE = "beauty"


def _sweep(benchmark, bench_config, bench_scale, title, variants):
    dataset, split, evaluator = prepare(PROFILE, bench_config, scale=bench_scale)

    def run_all():
        results = {}
        for label, isrec_config in variants.items():
            run = run_model("ISRec", dataset, split, evaluator, bench_config,
                            isrec_config=isrec_config)
            results[label] = run.report
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = ResultTable(["Variant", "HR@10", "NDCG@10", "MRR"], title=title)
    for label, report in results.items():
        table.add_row([label, report.hr10, report.ndcg10, report.mrr])
    emit(title, table.render())
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_similarity(benchmark, bench_config, bench_scale):
    """Cosine vs inner product, including the §3.4 mode-collapse diagnostic.

    The paper argues inner-product similarity collapses onto the few
    concepts with the largest norms; we measure this directly as the
    (normalised) entropy of the concept-activation distribution.
    """
    from repro.analysis import concept_activation_entropy
    from repro.core import ISRec
    from repro.utils import set_seed

    dataset, split, evaluator = prepare(PROFILE, bench_config, scale=bench_scale)
    base = ISRecConfig(dim=bench_config.dim)
    variants = {"cosine (paper)": replace(base, similarity="cosine"),
                "inner product": replace(base, similarity="dot")}

    def run_all():
        results = {}
        for label, isrec_config in variants.items():
            set_seed(bench_config.seed)
            model = ISRec.from_dataset(dataset, max_len=20, config=isrec_config)
            model.fit(dataset, split, bench_config.train_config())
            report = evaluator.evaluate(model, stage="test")
            probe_users = list(range(min(60, dataset.num_users)))
            entropy = concept_activation_entropy(model, dataset, users=probe_users)
            results[label] = (report, entropy)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = ResultTable(["Variant", "HR@10", "NDCG@10", "MRR",
                         "activation entropy"],
                        title="Ablation — cosine vs inner-product intent similarity")
    for label, (report, entropy) in results.items():
        table.add_row([label, report.hr10, report.ndcg10, report.mrr, entropy])
    emit("Ablation — intent similarity + mode-collapse diagnostic",
         table.render())

    for report, entropy in results.values():
        assert report.hr10 > 0.0
        assert 0.0 <= entropy <= 1.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_gumbel(benchmark, bench_config, bench_scale):
    base = ISRecConfig(dim=bench_config.dim)
    results = _sweep(benchmark, bench_config, bench_scale,
                     "Ablation — Gumbel top-k sampling vs deterministic top-k",
                     {"gumbel (paper)": replace(base, gumbel_noise=True),
                      "deterministic": replace(base, gumbel_noise=False)})
    for report in results.values():
        assert report.hr10 > 0.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_mlp_sharing(benchmark, bench_config, bench_scale):
    base = ISRecConfig(dim=bench_config.dim)
    results = _sweep(benchmark, bench_config, bench_scale,
                     "Ablation — per-concept MLP banks vs one shared MLP",
                     {"per-concept (paper)": replace(base, shared_mlp=False),
                      "shared": replace(base, shared_mlp=True)})
    for report in results.values():
        assert report.hr10 > 0.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_gcn_depth(benchmark, bench_config, bench_scale):
    base = ISRecConfig(dim=bench_config.dim)
    results = _sweep(benchmark, bench_config, bench_scale,
                     "Ablation — GCN depth in the structured intent transition",
                     {f"{depth} layer(s)": replace(base, gcn_layers=depth)
                      for depth in (1, 2, 3)})
    for report in results.values():
        assert report.hr10 > 0.0
