"""Benchmark: regenerate Table 6 — sensitivity to the maximum sequence length T.

Shape being reproduced (§4.6.3): the best T tracks the dataset's average
sequence length — small for Beauty (avg ~9), large for ML-1m (long
histories) — and performance is stable (no collapse) once T exceeds the
average length.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import run_table6

SWEEPS = {
    "beauty": [5, 10, 20, 30],
    "ml-1m": [5, 10, 25, 50],
}


@pytest.mark.benchmark(group="table6")
def test_table6_max_sequence_length(benchmark, bench_config, bench_scale,
                                    shape_checks):
    outcome = benchmark.pedantic(
        lambda: run_table6(sweeps=SWEEPS, config=bench_config,
                           scale=bench_scale, progress=True),
        rounds=1, iterations=1,
    )
    emit("Table 6 — maximum sequence length sensitivity", outcome.render())

    if not shape_checks:
        return
    # ML-1m (long histories) must prefer a longer T than a tiny one.
    ml = outcome.results["ml-1m"]
    assert max(ml[25].hr10, ml[50].hr10) > ml[5].hr10
    # Beauty must already be competitive at small T (avg length ~9): the
    # small-T setting reaches at least 85% of the best.
    beauty = outcome.results["beauty"]
    best = max(report.hr10 for report in beauty.values())
    assert beauty[10].hr10 >= 0.85 * best
