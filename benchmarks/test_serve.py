"""Serving benchmark: regenerates ``BENCH_serve.json`` at the repo root.

Freezes an ISRec-sized model into an inference artifact, then measures the
single-request path (training-forward baseline vs. cold vs. warm serving)
and a threaded load test through the micro-batcher (see
``repro/serve/bench.py`` and ``docs/serving.md``).  The workload follows
``REPRO_BENCH``: ``smoke`` runs miniature shapes as a plumbing check;
``standard``/``full`` run the default ISRec-sized shapes recorded in the
committed ``BENCH_serve.json``.
"""

from __future__ import annotations

import pathlib

import pytest

from benchmarks.conftest import emit, preset_name
from repro.serve import bench

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

RUNS = {
    "smoke": dict(preset="smoke", repeats=3),
    "standard": dict(preset="default", repeats=5),
    "full": dict(preset="default", repeats=9),
}


@pytest.mark.bench
def test_serve_bench_records_baseline():
    run = RUNS[preset_name()]
    results = bench.run_serve_bench(preset=run["preset"], repeats=run["repeats"])
    out_path = REPO_ROOT / "BENCH_serve.json"
    bench.write_bench(results, str(out_path))
    emit("Serving benchmark (BENCH_serve.json)", bench.format_summary(results))

    assert results["schema"] == bench.SCHEMA
    single, load = results["single_request"], results["load"]
    # A serve request must never build an autograd tape.
    assert single["graph_nodes_per_request"] == 0
    # Acceptance floor: single-request scoring at least 2x faster than
    # pushing the request through the training-path forward.
    assert single["speedup"] >= 2.0
    assert single["serve_warm"]["wall_time_s"] < single["serve_cold"]["wall_time_s"]
    assert load["requests"] == load["clients"] * results["shapes"]["requests_per_client"]
    assert load["latency_p99_s"] >= load["latency_p50_s"] > 0
    assert 0.0 < load["cache_hit_rate"] <= 1.0
    assert load["mean_batch_size"] >= 1.0
