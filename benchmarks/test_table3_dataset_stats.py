"""Benchmark: regenerate Table 3 — dataset statistics after preprocessing.

Shape being reproduced: the relative statistics of the five datasets —
MovieLens profiles dense with long sequences, Beauty the sparsest, Steam
the biggest user base among the sparse trio.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import render_table3, run_table3


@pytest.mark.benchmark(group="table3")
def test_table3_dataset_statistics(benchmark, bench_scale):
    stats = benchmark.pedantic(lambda: run_table3(scale=bench_scale),
                               rounds=1, iterations=1)
    emit("Table 3 — dataset statistics", render_table3(stats))

    # Sparsity ordering of the paper.
    assert stats["ml-1m"].density > stats["ml-20m"].density
    assert stats["ml-20m"].density > stats["beauty"].density
    assert stats["steam"].density > stats["beauty"].density
    # Sequence-length ordering: MovieLens >> Steam > Beauty > Epinions.
    assert stats["ml-1m"].avg_length > 2 * stats["steam"].avg_length
    assert stats["steam"].avg_length > stats["beauty"].avg_length
    assert stats["beauty"].avg_length > stats["epinions"].avg_length
    # 5-core preprocessing holds.
    for row in stats.values():
        assert row.avg_length >= 5.0
