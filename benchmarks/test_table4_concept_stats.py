"""Benchmark: regenerate Table 4 — statistics of the preprocessed concepts.

Shape being reproduced: Beauty carries the largest concept vocabulary,
review-rich domains average ~4-5 concepts per item while ML-1m (titles +
genres only) averages ~2.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import render_table4, run_table4


@pytest.mark.benchmark(group="table4")
def test_table4_concept_statistics(benchmark, bench_scale):
    stats = benchmark.pedantic(lambda: run_table4(scale=bench_scale),
                               rounds=1, iterations=1)
    emit("Table 4 — concept statistics", render_table4(stats))

    assert stats["beauty"].num_concepts == max(s.num_concepts for s in stats.values())
    assert stats["ml-1m"].avg_concepts_per_item < stats["beauty"].avg_concepts_per_item
    for row in stats.values():
        assert row.num_concepts > 0
        assert row.num_edges > 0
        assert 1.0 <= row.avg_concepts_per_item <= 10.0
