"""Wall-clock telemetry overhead bound (moved out of tier-1).

Asserts the ISSUE acceptance criterion — telemetry costs under 5% of the
fused train-step time — by timing the same step with telemetry fully
enabled vs disabled in one session.  Timing assertions belong here, not
in tier-1: they flake under machine drift and CPU contention, which the
deterministic counted assertions in
``tests/obs/test_trainer_telemetry.py`` are immune to.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro import obs
from repro.tensor import fused
from repro.utils import bench


@pytest.mark.bench
def test_overhead_under_five_percent():
    shapes = bench.SMOKE_SHAPES
    model, batch = bench._build_model_and_batch(shapes)
    model.train()
    parameters = list(model.parameters())

    def step():
        loss = model.training_loss(batch)
        loss.backward()
        for parameter in parameters:
            parameter.zero_grad()

    with fused.use_fused(True):
        # Measure disabled on both sides of enabled so drift during the
        # run cannot bias the comparison one way.
        disabled = bench.measure(step, repeats=8, warmup=3)
        registry = obs.MetricsRegistry()
        previous = obs.set_registry(registry)
        try:
            with obs.use_telemetry():
                enabled = bench.measure(step, repeats=8, warmup=3)
        finally:
            obs.set_registry(previous)
        disabled_again = bench.measure(step, repeats=8, warmup=3)

    off = min(disabled["wall_time_s"], disabled_again["wall_time_s"])
    on = enabled["wall_time_s"]
    emit("Telemetry overhead (fused train step)",
         f"disabled {off * 1e3:.3f} ms   enabled {on * 1e3:.3f} ms   "
         f"overhead {(on / off - 1) * 100:+.2f}%")
    assert on <= off * 1.05, (
        f"telemetry overhead exceeds 5%: enabled {on * 1e3:.3f} ms vs "
        f"disabled {off * 1e3:.3f} ms"
    )
    # The enabled step really did record dispatches (it measured the
    # instrumented path, not a silently disabled one).
    assert registry.counter("kernel_dispatch.training_loss.fused").value > 0
