"""Benchmark: regenerate Figure 3 — intent feature dimensionality d' sweep.

Shape being reproduced (§4.6.1): performance rises from a too-small d',
peaks at a moderate value (8 in the paper), and does not keep improving for
the largest d' (over-parameterisation).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.experiments import run_figure3

DIMS = [2, 4, 8, 16, 32]


@pytest.mark.benchmark(group="figure3")
def test_figure3_intent_dimensionality(benchmark, bench_config, bench_scale,
                                       shape_checks):
    outcome = benchmark.pedantic(
        lambda: run_figure3(dims=DIMS, profile="beauty", config=bench_config,
                            scale=bench_scale, progress=True),
        rounds=1, iterations=1,
    )
    emit("Figure 3 — intent feature dimensionality d'", outcome.render())

    if not shape_checks:
        return
    series = dict(outcome.series("HR@10"))
    best = outcome.best("HR@10")
    # A moderate d' must be at least as good as the extremes (peak shape).
    middle = max(series[4], series[8], series[16])
    assert middle >= series[2] * 0.98, "tiny d' should not dominate"
    assert middle >= series[32] * 0.98, "huge d' should not dominate"
    assert best in DIMS
