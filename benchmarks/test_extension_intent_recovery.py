"""Extension bench: does ISRec recover the *true* latent intents?

Unique to the simulator substrate: the generator records each user's true
intent trajectory, so we can measure how much of it ISRec's extracted
intention vector ``m_t`` captures — the direct test of the paper's central
claim that the model identifies the intentions driving behaviour (§1, Q2).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis import true_intent_recovery
from repro.core import ISRec, ISRecConfig
from repro.data import split_leave_one_out
from repro.data.registry import PROFILES
from repro.data.synthetic import IntentDrivenSimulator
from repro.utils import set_seed
from repro.utils.tables import ResultTable


@pytest.mark.benchmark(group="extension")
def test_extension_true_intent_recovery(benchmark, bench_config, bench_scale,
                                        shape_checks):
    from dataclasses import replace

    profile = PROFILES["beauty"]
    scaled = replace(
        profile,
        num_users=max(30, int(profile.num_users * bench_scale)),
        num_items=max(30, int(profile.num_items * bench_scale)),
        max_length=min(profile.max_length,
                       max(int(profile.num_items * bench_scale) - 10, 7)),
    )
    simulator = IntentDrivenSimulator(scaled)
    dataset = simulator.generate()
    split = split_leave_one_out(dataset.sequences)

    def run():
        set_seed(bench_config.seed)
        model = ISRec.from_dataset(dataset, max_len=20,
                                   config=ISRecConfig(dim=bench_config.dim))
        model.fit(dataset, split, bench_config.train_config())
        return true_intent_recovery(model, dataset, simulator, max_users=150)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable(["Quantity", "Value"],
                        title="Extension — true latent intent recovery (beauty)")
    table.add_row(["mean overlap with true intents", report.mean_overlap])
    table.add_row(["chance level (lambda / K)", report.chance_overlap])
    table.add_row(["lift over chance", report.lift])
    table.add_row(["steps scored", float(report.steps_scored)])
    emit("Extension — true intent recovery", table.render())

    assert report.steps_scored > 100
    if shape_checks:
        assert report.lift > 1.5, (
            f"trained ISRec should recover true intents well above chance "
            f"(lift {report.lift:.2f})"
        )
