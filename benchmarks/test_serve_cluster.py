"""Cluster benchmark: regenerates ``BENCH_serve_cluster.json`` at repo root.

Drives a :class:`~repro.serve.ServingCluster` with Zipfian threaded load,
SIGKILLs a shard worker mid-run, and records sustained QPS, client-side
p50/p99 latency, shed/degraded rates, and the recovery time after the kill
(see ``repro/serve/loadgen.py`` and ``docs/resilience.md``).  The workload
follows ``REPRO_BENCH``: ``smoke`` is a miniature plumbing check;
``standard``/``full`` run the default shapes recorded in the committed
``BENCH_serve_cluster.json``.
"""

from __future__ import annotations

import pathlib

import pytest

from benchmarks.conftest import emit, preset_name
from repro.serve import loadgen
from repro.utils.bench import write_bench

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

RUNS = {
    "smoke": dict(preset="smoke"),
    "standard": dict(preset="default"),
    "full": dict(preset="default"),
}


@pytest.mark.bench
def test_serve_cluster_bench_records_baseline():
    run = RUNS[preset_name()]
    results = loadgen.run_cluster_bench(preset=run["preset"])
    out_path = REPO_ROOT / "BENCH_serve_cluster.json"
    write_bench(results, str(out_path))
    emit("Cluster benchmark (BENCH_serve_cluster.json)",
         loadgen.format_summary(results))

    assert results["schema"] == loadgen.SCHEMA
    load = results["load"]
    shapes = results["shapes"]
    # The resilience invariant: every request resolved, typed.
    assert load["requests"] == shapes["clients"] * shapes["requests_per_client"]
    assert sum(load["outcomes"].values()) == load["requests"]
    assert load["outcomes"]["error"] == 0
    assert load["sustained_qps"] > 0
    assert load["latency_p99_s"] >= load["latency_p50_s"] > 0
    # The mid-run SIGKILL must have been survived and recovered from.
    recovery = results["recovery"]
    assert recovery is not None
    assert recovery["recovery_s"] is not None
    assert recovery["recovery_s"] < 30.0
    workers = results["cluster"]["workers"]
    assert workers[recovery["shard"]]["restarts"] >= 1
