# Canonical workflows for the ISRec reproduction.

.PHONY: install test test-faults test-chaos test-serve test-parallel test-online test-intent test-graphs bench bench-smoke bench-full bench-kernels bench-serve bench-serve-cluster bench-parallel bench-backends bench-online telemetry-report table2 table-intents table-graphs figures lint

install:
	pip install -e . || \
	echo "$(PWD)/src" > "$$(python -c 'import site; print(site.getsitepackages()[0])')/repro-dev.pth"

test:
	pytest tests/

test-faults:      ## fault-injection suite (kill/resume, divergence, corruption)
	pytest tests/ -m faults

test-chaos:       ## serving chaos suite (worker kills, corruption, injected faults)
	pytest tests/serve -m faults

test-serve:       ## serving subsystem: exporter, engine, batcher, cluster, parity, golden run
	pytest tests/serve tests/test_golden_e2e.py

test-parallel:    ## parallel subsystem: data-parallel trainer, prefetch, sweep executor
	pytest tests/parallel

test-online:      ## online loop: event log, learner, shadow gate, observe parity, resume
	pytest tests/online tests/serve/test_observe_parity.py tests/train/test_online_resume.py

test-intent:      ## intent objectives: contrastive kernel, sessions, checkpoints, sweep, goldens
	pytest tests/tensor/test_fused_contrastive.py tests/data/test_sessions.py tests/eval/test_session_eval.py tests/train/test_contrastive_checkpoint.py tests/experiments/test_intent_objectives.py tests/test_golden_e2e.py

test-graphs:      ## graph workloads: simulator graphs, KTUP/FM baselines, comparison sweep
	pytest tests/data/test_graphs.py tests/models/test_graph_baselines.py tests/experiments/test_graph_comparison.py

bench:            ## standard preset (~30-40 min on one core)
	pytest benchmarks/ --benchmark-only -s

bench-smoke:      ## plumbing check (~2 min)
	REPRO_BENCH=smoke pytest benchmarks/ --benchmark-only -s

bench-full:       ## full profiles (~hours)
	REPRO_BENCH=full pytest benchmarks/ --benchmark-only -s

bench-kernels:    ## fused vs composed kernel microbench, writes BENCH_kernels.json (<60 s)
	PYTHONPATH=src python -m repro.utils.bench --out BENCH_kernels.json

bench-serve:      ## serving latency/load benchmark, writes BENCH_serve.json (<60 s)
	PYTHONPATH=src python -m repro.serve.bench --out BENCH_serve.json

bench-backends:   ## backend seam benchmark (float32/arena/int8), writes BENCH_backends.json (<5 min)
	PYTHONPATH=src python -m repro.utils.bench_backends --out BENCH_backends.json

bench-serve-cluster: ## cluster load + kill-recovery benchmark, writes BENCH_serve_cluster.json (<2 min)
	PYTHONPATH=src python -m repro.serve.loadgen --out BENCH_serve_cluster.json

bench-parallel:   ## data-parallel training benchmark, writes BENCH_parallel.json (a few min)
	PYTHONPATH=src python -m repro.parallel.bench --out BENCH_parallel.json

bench-online:     ## online-loop drift/fine-tune/rollout benchmark, writes BENCH_online.json (<2 min)
	PYTHONPATH=src python -m repro.online.bench --out BENCH_online.json

telemetry-report: ## pretty-print a telemetry stream: make telemetry-report FILE=runs/x.telemetry.jsonl
	@test -n "$(FILE)" || { echo "usage: make telemetry-report FILE=<run>.telemetry.jsonl"; exit 2; }
	PYTHONPATH=src python -m repro.obs.report $(FILE)

table2:
	python -m repro.experiments table2

table-intents:
	python -m repro.experiments intents

table-graphs:
	python -m repro.experiments graphs

figures:
	python -m repro.experiments figure2
	python -m repro.experiments figure3
	python -m repro.experiments figure4
