"""Parallel training: data-parallel workers, prefetch, and a --jobs sweep.

Run with::

    python examples/parallel_training.py [--workers 2] [--jobs 2]

Three independent speed levers from ``docs/parallelism.md``:

1. **Data-parallel training** — the same SASRec fit with
   ``TrainConfig(num_workers=N)``: each step is sharded over N forked
   workers and the token-weighted gradient average is applied by the
   parent. With a deterministic forward pass (dropout 0.0) the loss
   curve matches the single-process run to 1e-6, which this script
   verifies epoch by epoch.
2. **Prefetch** — ``TrainConfig(prefetch=K)`` assembles batches on a
   background thread; the stream (and therefore the curve) is unchanged.
3. **Parallel sweeps** — ``run_cells(..., jobs=N)``, the machinery behind
   ``python -m repro.experiments table2 --jobs N``, trains independent
   (model, dataset) cells in worker processes with results identical to
   the serial runner.

Speedup is bounded by physical cores; on a single-core machine the
multi-worker runs demonstrate equivalence, not speed.
"""

from __future__ import annotations

import argparse
import copy
import time

from repro import TrainConfig, load_dataset, split_leave_one_out
from repro.experiments.common import fast_config
from repro.models import SASRec
from repro.parallel import SweepCell, run_cells
from repro.utils import set_seed


def build(dataset, args):
    set_seed(args.seed)
    return SASRec(dataset.num_items, dim=args.dim, max_len=20,
                  num_layers=1, dropout=0.0)


def fit(model, dataset, split, args, **overrides):
    config = TrainConfig(epochs=args.epochs, eval_every=args.epochs + 1,
                         patience=0, seed=args.seed, **overrides)
    start = time.perf_counter()
    history = model.fit(dataset, split, config)
    return history, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="epinions")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--prefetch", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = load_dataset(args.profile, scale=args.scale)
    split = split_leave_one_out(dataset.sequences)
    print(f"{dataset.name}: {dataset.num_users} users, "
          f"{dataset.num_items} items")

    # 1. Single-process baseline vs data-parallel workers.
    solo_model = build(dataset, args)
    parallel_model = copy.deepcopy(solo_model)  # identical initial weights
    solo, solo_s = fit(solo_model, dataset, split, args)
    print(f"single-process      {solo_s:6.1f}s  losses "
          + " ".join(f"{loss:.6f}" for loss in solo.losses))

    parallel, par_s = fit(parallel_model, dataset, split, args,
                          num_workers=args.workers, prefetch=args.prefetch)
    drift = max(abs(a - b) for a, b in zip(solo.losses, parallel.losses))
    print(f"{args.workers} workers + prefetch {par_s:6.1f}s  losses "
          + " ".join(f"{loss:.6f}" for loss in parallel.losses))
    print(f"max per-epoch loss drift vs single-process: {drift:.2e} "
          f"({'OK' if drift <= 1e-6 else 'DIVERGED'}, bound 1e-6)")

    # 2. A small sweep grid, --jobs cells at a time.
    models = ["PopRec", "GRU4Rec", "SASRec"]
    cells = [SweepCell(key=f"{args.profile}/{name}", model=name,
                       profile=args.profile, scale=args.scale,
                       config=fast_config(dim=args.dim, epochs=args.epochs))
             for name in models]
    start = time.perf_counter()
    results = run_cells(
        cells, jobs=args.jobs,
        progress=lambda cell, run: print(
            f"  [{cell.key}] HR@10 {run.report.hr10:.4f} "
            f"({run.seconds:.1f}s)"))
    print(f"sweep of {len(models)} models at --jobs {args.jobs}: "
          f"{time.perf_counter() - start:.1f}s wall")
    best = max(results.values(), key=lambda run: run.report.hr10)
    print(f"best HR@10: {best.model_name} {best.report.hr10:.4f}")


if __name__ == "__main__":
    main()
