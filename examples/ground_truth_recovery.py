"""Measure how well ISRec recovers the *true* latent intents.

Run with::

    python examples/ground_truth_recovery.py [--epochs 40]

The synthetic substrate records each simulated user's true intent
trajectory, enabling a validation impossible on real data: compare the
intents ISRec *extracts* (``m_t``) against the intents that actually
*generated* the behaviour.  The script trains the full ISRec, the "w/o GNN"
ablation, and an untrained model, and reports each one's recovery lift over
chance — showing the structured transition helps not just ranking metrics
but genuine intent identification.
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.analysis import true_intent_recovery
from repro.core import ISRec, ISRecConfig
from repro.data import split_leave_one_out
from repro.data.registry import PROFILES
from repro.data.synthetic import IntentDrivenSimulator
from repro.train import TrainConfig
from repro.utils import ResultTable, set_seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--scale", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    profile = PROFILES["beauty"]
    num_items = max(30, int(profile.num_items * args.scale))
    config = replace(
        profile,
        num_users=max(30, int(profile.num_users * args.scale)),
        num_items=num_items,
        max_length=min(profile.max_length, num_items - 10),
    )
    simulator = IntentDrivenSimulator(config)
    dataset = simulator.generate()
    split = split_leave_one_out(dataset.sequences)
    print(f"World: {dataset.num_users} users, {dataset.num_items} items, "
          f"{dataset.num_concepts} concepts "
          f"(true lambda = {config.true_lambda})")

    table = ResultTable(["Model", "intent recovery", "chance", "lift"],
                        title="True latent intent recovery")
    variants = {
        "ISRec (untrained)": (ISRecConfig(dim=32), 0),
        "ISRec w/o GNN": (ISRecConfig(dim=32, use_gnn=False), args.epochs),
        "ISRec (full)": (ISRecConfig(dim=32), args.epochs),
    }
    for label, (isrec_config, epochs) in variants.items():
        set_seed(args.seed)
        model = ISRec.from_dataset(dataset, max_len=20, config=isrec_config)
        if epochs:
            model.fit(dataset, split,
                      TrainConfig(epochs=epochs, eval_every=5, patience=3,
                                  seed=args.seed))
        report = true_intent_recovery(model, dataset, simulator, max_users=200)
        table.add_row([label, report.mean_overlap, report.chance_overlap,
                       f"{report.lift:.2f}x"])
        print(f"  {label}: scored {report.steps_scored} steps", flush=True)

    print()
    print(table)


if __name__ == "__main__":
    main()
