"""Quickstart: train ISRec on the Beauty-like profile and inspect results.

Run with::

    python examples/quickstart.py [--epochs 40] [--profile beauty]

This walks the full public API surface in ~40 lines of user code:
load a dataset profile, split it leave-one-out, build ISRec from the
dataset, train with early stopping, evaluate HR/NDCG/MRR against 100
popularity-sampled negatives, and print an intent-transition explanation
for one user (the paper's Fig. 2, in text form).
"""

from __future__ import annotations

import argparse

from repro import (
    ISRec,
    ISRecConfig,
    IntentTracer,
    RankingEvaluator,
    TrainConfig,
    load_dataset,
    split_leave_one_out,
)
from repro.data import default_max_len
from repro.utils import ResultTable, set_seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="beauty",
                        help="dataset profile (beauty/steam/epinions/ml-1m/ml-20m)")
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--scale", type=float, default=0.6,
                        help="dataset size multiplier (1.0 = full profile)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    set_seed(args.seed)
    dataset = load_dataset(args.profile, scale=args.scale)
    stats = dataset.statistics()
    print(f"Loaded {stats.name}: {stats.num_users} users, {stats.num_items} items, "
          f"{stats.num_interactions} interactions "
          f"(avg length {stats.avg_length:.1f}, density {100 * stats.density:.2f}%)")

    split = split_leave_one_out(dataset.sequences)
    model = ISRec.from_dataset(dataset,
                               max_len=default_max_len(args.profile),
                               config=ISRecConfig(dim=args.dim))
    print(f"ISRec with {model.num_parameters():,} parameters "
          f"({dataset.num_concepts} concepts, lambda={model.config.num_intents})")

    history = model.fit(dataset, split,
                        TrainConfig(epochs=args.epochs, eval_every=5,
                                    patience=3, seed=args.seed, verbose=True))
    print(f"Trained {history.epochs_run} epochs "
          f"(best validation HR@10 {history.best_score:.4f} "
          f"at epoch {history.best_epoch})")

    evaluator = RankingEvaluator(split, dataset.num_items, seed=args.seed,
                                 popularity=dataset.item_popularity())
    report = evaluator.evaluate(model, stage="test")
    table = ResultTable(["Metric", "ISRec"], title=f"Test metrics — {args.profile}")
    for metric, value in report.as_dict().items():
        table.add_row([metric, value])
    print(table)

    print("\nIntent-transition explanation for one user (paper Fig. 2):")
    print(IntentTracer(model, dataset).trace(user=0).render())


if __name__ == "__main__":
    main()
