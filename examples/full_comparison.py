"""Model comparison on one dataset profile (one column-block of Table 2).

Run with::

    python examples/full_comparison.py [--profile beauty] [--models SASRec BERT4Rec ISRec]

Trains the requested subset of the paper's eleven models on one profile and
prints the Table 2 block with ISRec's relative improvement over the best
baseline.  Use ``--models all`` (slow: trains everything) for the complete
column.  ``--significance`` additionally runs a paired bootstrap between
ISRec and the strongest baseline on the shared candidate lists.
"""

from __future__ import annotations

import argparse

from repro.analysis import rank_distribution
from repro.eval import paired_bootstrap
from repro.experiments import (
    MODEL_NAMES,
    ExperimentConfig,
    build_model,
    prepare,
    run_table2,
)
from repro.data import default_max_len
from repro.utils import set_seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="beauty")
    parser.add_argument("--models", nargs="+",
                        default=["PopRec", "BPR-MF", "GRU4Rec", "SASRec",
                                 "BERT4Rec", "ISRec"],
                        help="model names from Table 2, or 'all'")
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--scale", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--significance", action="store_true",
                        help="paired bootstrap: ISRec vs the strongest baseline")
    args = parser.parse_args()

    models = list(MODEL_NAMES) if args.models == ["all"] else args.models
    unknown = [name for name in models if name not in MODEL_NAMES]
    if unknown:
        parser.error(f"unknown models {unknown}; choose from {MODEL_NAMES}")

    set_seed(args.seed)
    config = ExperimentConfig(dim=args.dim, epochs=args.epochs,
                              eval_every=5, patience=3, seed=args.seed)
    outcome = run_table2(profiles=[args.profile], models=models,
                         config=config, progress=True)
    print()
    print(outcome.render())
    seconds = outcome.seconds[args.profile]
    print("\nTraining time per model: "
          + ", ".join(f"{name} {elapsed:.1f}s" for name, elapsed in seconds.items()))

    if args.significance and "ISRec" in models and len(models) >= 2:
        reports = outcome.results[args.profile]
        baseline = max((name for name in reports if name != "ISRec"),
                       key=lambda name: reports[name].hr10)
        print(f"\nPaired bootstrap, ISRec vs {baseline} "
              f"(shared candidates, seed {args.seed}):")
        dataset, split, evaluator = prepare(args.profile, config, scale=args.scale)
        ranks = {}
        for name in ("ISRec", baseline):
            set_seed(config.seed)
            model = build_model(name, dataset, default_max_len(args.profile), config)
            model.fit(dataset, split, config.train_config())
            ranks[name] = rank_distribution(model, evaluator)
        for metric in ("HR@10", "NDCG@10", "MRR"):
            result = paired_bootstrap(ranks["ISRec"], ranks[baseline],
                                      metric=metric, seed=args.seed)
            print("  " + result.summary())


if __name__ == "__main__":
    main()
