"""Intent extraction and structured transition showcases (paper Fig. 2 / §4.4).

Run with::

    python examples/intent_showcase.py [--profile steam] [--users 3]

Trains ISRec on a review-rich profile, then renders the paper's showcase:
for each step of a user's history, the candidate intents (concepts most
similar to the sequence state), the activated intents ``m_t``, the
transitioned next intents ``m_{t+1}`` inferred on the concept graph, and
the top item recommendations.  Finally it quantifies the explanation
quality: how often the predicted next intents overlap the concepts of the
item the user actually consumed next.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ISRec, ISRecConfig, IntentTracer, TrainConfig, load_dataset, split_leave_one_out
from repro.data import default_max_len
from repro.utils import set_seed


def intent_hit_rate(tracer: IntentTracer, dataset, users: list[int]) -> float:
    """Fraction of steps where a predicted next intent matches a concept of
    the actually-consumed next item."""
    hits = 0
    total = 0
    for user in users:
        trace = tracer.trace(user)
        sequence = dataset.sequences[user][-len(trace.steps):]
        for step, next_item in zip(trace.steps[:-1], sequence[1:]):
            next_concepts = set(dataset.concepts_of_item(int(next_item)))
            if next_concepts & set(step.next_intents):
                hits += 1
            total += 1
    return hits / max(total, 1)


def random_hit_chance(dataset, num_intents: int) -> float:
    """Probability a uniformly random intent set hits an item's concepts.

    For an item with ``c`` concepts out of ``K``, a random lambda-subset
    misses with probability ``C(K-c, lambda) / C(K, lambda)``; averaged over
    the catalog.
    """
    from math import comb

    K = dataset.num_concepts
    chances = []
    for item in range(1, dataset.num_items + 1):
        c = int(dataset.item_concepts[item].sum())
        if c == 0:
            continue
        miss = comb(K - c, num_intents) / comb(K, num_intents) \
            if K - c >= num_intents else 0.0
        chances.append(1.0 - miss)
    return float(np.mean(chances)) if chances else 0.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="steam")
    parser.add_argument("--users", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=40)
    parser.add_argument("--scale", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    set_seed(args.seed)
    dataset = load_dataset(args.profile, scale=args.scale)
    split = split_leave_one_out(dataset.sequences)
    model = ISRec.from_dataset(dataset, max_len=default_max_len(args.profile),
                               config=ISRecConfig(dim=32))
    print(f"Training ISRec on {args.profile} "
          f"({dataset.num_users} users, {dataset.num_concepts} concepts)...")
    model.fit(dataset, split, TrainConfig(epochs=args.epochs, eval_every=5,
                                          patience=3, seed=args.seed))

    tracer = IntentTracer(model, dataset, num_candidates=6, num_recommendations=3)
    # Pick users with mid-length, readable histories.
    lengths = sorted(((len(seq), user) for user, seq in enumerate(dataset.sequences)),
                     reverse=True)
    chosen = [user for _, user in lengths[len(lengths) // 3:][:args.users]]

    for user in chosen:
        print()
        print(tracer.trace(user).render())

    probe_users = [user for _, user in lengths[: max(30, args.users)]]
    rate = intent_hit_rate(tracer, dataset, probe_users)
    random_rate = random_hit_chance(dataset,
                                    min(model.config.num_intents,
                                        dataset.num_concepts))
    print(f"\nPredicted next intents match the next item's concepts at "
          f"{100 * rate:.1f}% of steps "
          f"(random intent sets would match ~{100 * random_rate:.1f}%).")


if __name__ == "__main__":
    main()
