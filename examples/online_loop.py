"""Online learning loop: drift, incremental fine-tune, shadow-gated rollout.

Run with::

    python examples/online_loop.py [--rounds 3] [--events 600]

The full train → serve → observe loop in one script:

1. train a small ISRec on a synthetic profile and freeze it into an
   inference artifact;
2. start a :class:`ServingCluster` over that artifact and seed histories;
3. simulate *intent drift* — users suddenly interact with a hot band of
   items their histories never touched — through ``cluster.observe``,
   which feeds the cluster's ring-buffered event log;
4. run :class:`OnlineLearner` rounds: drain the events, fine-tune the
   live weights incrementally, checkpoint each round;
5. publish the adapted artifact: shadow-evaluate candidate vs incumbent
   on held-out next items, then hot-swap canary-first on pass;
6. offer a deliberately regressed candidate and watch the gate refuse it
   with a typed :class:`ShadowRegression`.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import ISRec, ISRecConfig, TrainConfig, split_leave_one_out
from repro.data.synthetic import SimulatorConfig, generate_dataset
from repro.online import (
    OnlineConfig,
    OnlineLearner,
    ShadowEvaluator,
    ShadowRegression,
)
from repro.serve import ClusterConfig, ServingCluster, export_artifact, load_artifact
from repro.utils import set_seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=3,
                        help="fine-tune rounds to run")
    parser.add_argument("--events", type=int, default=600,
                        help="drifted interactions to stream")
    parser.add_argument("--epochs", type=int, default=5,
                        help="offline pre-training epochs")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    set_seed(args.seed)
    dataset = generate_dataset(SimulatorConfig(
        name="online-demo", domain="beauty", num_users=200, num_items=150,
        num_concepts=24, avg_length=10.0, max_length=30, true_lambda=2,
        seed=args.seed))
    split = split_leave_one_out(dataset.sequences)
    model = ISRec.from_dataset(dataset, max_len=20,
                               config=ISRecConfig(dim=32))
    print(f"Pre-training ISRec ({model.num_parameters():,} parameters) ...")
    model.fit(dataset, split, TrainConfig(epochs=args.epochs, eval_every=10,
                                          patience=0, seed=args.seed))

    with tempfile.TemporaryDirectory() as tmp:
        incumbent = export_artifact(model, Path(tmp) / "incumbent.npz")
        cluster = ServingCluster(incumbent, ClusterConfig(world=2))
        try:
            histories = {user: [int(item) for item in split.test_input(user)]
                         for user in range(split.num_users)}
            for user, items in histories.items():
                cluster.set_history(user, items)
            print(f"Serving {len(histories)} users on 2 shards "
                  f"from {Path(cluster.artifact_path).name}")

            # Intent drift: a hot band of items nobody interacted with.
            rng = np.random.default_rng(args.seed + 1)
            band = np.arange(dataset.num_items - 15, dataset.num_items + 1)
            users = sorted(histories)
            for step in range(args.events):
                cluster.observe(users[step % len(users)],
                                int(rng.choice(band)))
            print(f"Observed {len(cluster.events)} drifted interactions "
                  f"(ring stats: {cluster.events.stats()})")

            shadow = ShadowEvaluator.from_histories(
                {user: cluster.router.history(user) for user in users[:40]})
            learner = OnlineLearner(
                load_artifact(cluster.artifact_path), cluster.events,
                config=OnlineConfig(batch_size=32, steps_per_round=6,
                                    shadow_tolerance=0.5, seed=args.seed,
                                    checkpoint_dir=str(Path(tmp) / "ckpts")),
                base_histories=histories, cluster=cluster, shadow=shadow)

            outcome = learner.run(rounds=args.rounds)
            for record in outcome["rounds"]:
                loss = record["mean_loss"]
                print(f"  round {record['round']}: {record['events']} events, "
                      f"{record['steps']} steps, "
                      f"loss {'n/a' if loss is None else f'{loss:.4f}'}")
            for publish in outcome["publishes"]:
                if publish.get("refused"):
                    print(f"  refused: {publish['shadow']}")
                else:
                    shadow_report = publish["shadow"]
                    print(f"  promoted {Path(publish['path']).name}: "
                          f"HR@10 delta {shadow_report['hr_delta']:+.4f}, "
                          f"swap {publish['swap']['duration_s'] * 1e3:.1f} ms")
            print(f"Cluster now serves {Path(cluster.artifact_path).name} "
                  f"after {cluster.swaps} swap(s)")

            # A regressed candidate (freshly re-initialised weights) must
            # be refused: the cluster keeps the adapted incumbent.
            set_seed(args.seed + 99)
            regressed = ISRec.from_dataset(dataset, max_len=20,
                                           config=ISRecConfig(dim=32))
            bad_learner = OnlineLearner(
                regressed, cluster.events,
                config=OnlineConfig(shadow_tolerance=0.05),
                cluster=cluster, shadow=shadow)
            try:
                bad_learner.publish(Path(tmp) / "regressed.npz")
                print("unexpected: regressed candidate was promoted")
            except ShadowRegression as error:
                print(f"Shadow gate refused the regressed candidate: {error}")
        finally:
            cluster.close()


if __name__ == "__main__":
    main()
