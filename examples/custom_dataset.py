"""Bring-your-own-data: run ISRec on interactions you construct yourself.

Run with::

    python examples/custom_dataset.py

Shows the integration path a downstream user follows for their own logs:

1. build ``sequences`` (per-user chronological item-id lists, 1-indexed),
2. build the item-concept matrix ``E`` — here via the keyword-extraction
   pipeline over free-text item descriptions, exactly as §4.1 of the paper
   extracts ConceptNet keywords from titles/reviews,
3. build a concept relation graph (any ``(K, K)`` 0/1 matrix works),
4. assemble an :class:`InteractionDataset` and train.

The toy "store" below sells coffee gear and hiking gear; users drift
between the two interests, so the learned intent traces show coffee
concepts transitioning to hiking concepts.
"""

from __future__ import annotations

import numpy as np

from repro import ISRec, ISRecConfig, IntentTracer, RankingEvaluator, TrainConfig
from repro.data import InteractionDataset, split_leave_one_out
from repro.data.concepts import ConceptSpace
from repro.utils import set_seed

import networkx as nx

CONCEPTS = ["espresso", "grinder", "filter", "kettle",     # coffee community
            "trail", "backpack", "boots", "tent"]          # hiking community
COFFEE, HIKING = range(4), range(4, 8)

ITEM_DESCRIPTIONS = [
    "compact espresso machine with grinder",
    "burr grinder for espresso lovers",
    "paper filter pack for pour over filter brewing",
    "gooseneck kettle for filter coffee",
    "ceramic kettle and espresso cups",
    "travel espresso maker with filter basket",
    "electric kettle with grinder combo",
    "reusable metal filter for espresso",
    "forest trail guide with backpack tips",
    "ultralight backpack for any trail",
    "waterproof boots for muddy trail days",
    "two person tent with backpack straps",
    "insulated boots and tent footprint bundle",
    "trail running boots with tent stakes",
    "frameless backpack for long trail hikes",
    "four season tent for alpine trail camps",
]


def build_concept_space() -> ConceptSpace:
    adjacency = np.zeros((8, 8), dtype=np.float32)
    for community in (COFFEE, HIKING):
        members = list(community)
        for a in members:
            for b in members:
                if a != b:
                    adjacency[a, b] = 1.0
    adjacency[3, 4] = adjacency[4, 3] = 1.0  # kettle—trail bridge (thermos!)
    graph = nx.from_numpy_array(adjacency)
    return ConceptSpace(names=CONCEPTS,
                        community_of=np.array([0] * 4 + [1] * 4),
                        community_names=["coffee", "hiking"],
                        adjacency=adjacency, graph=graph)


def extract_item_concepts(space: ConceptSpace) -> np.ndarray:
    """Keyword extraction over the free-text descriptions (§4.1)."""
    matrix = np.zeros((len(ITEM_DESCRIPTIONS) + 1, len(CONCEPTS)), dtype=np.float32)
    for item, text in enumerate(ITEM_DESCRIPTIONS, start=1):
        for concept_index, concept in enumerate(CONCEPTS):
            if concept in text:
                matrix[item, concept_index] = 1.0
    return matrix


def simulate_users(item_concepts: np.ndarray, num_users: int = 120,
                   seed: int = 0) -> list[np.ndarray]:
    """Users start in one interest and may drift to the other mid-sequence."""
    rng = np.random.default_rng(seed)
    num_items = item_concepts.shape[0] - 1
    coffee_items = [i for i in range(1, num_items + 1) if item_concepts[i, :4].sum() > 0]
    hiking_items = [i for i in range(1, num_items + 1) if item_concepts[i, 4:].sum() > 0]
    sequences = []
    for _ in range(num_users):
        first, second = (coffee_items, hiking_items) if rng.random() < 0.5 \
            else (hiking_items, coffee_items)
        length = int(rng.integers(5, 9))
        switch = int(rng.integers(2, length - 1))
        order = (list(rng.permutation(first))[:switch]
                 + list(rng.permutation(second))[:length - switch])
        sequences.append(np.asarray(order, dtype=np.int64))
    return sequences


def main() -> None:
    set_seed(0)
    space = build_concept_space()
    item_concepts = extract_item_concepts(space)
    sequences = simulate_users(item_concepts)

    dataset = InteractionDataset(
        name="coffee-and-trails",
        sequences=sequences,
        num_items=len(ITEM_DESCRIPTIONS),
        item_concepts=item_concepts,
        concept_space=space,
        item_titles=[text.split(" with ")[0] for text in ITEM_DESCRIPTIONS],
    )
    print(f"Custom dataset: {dataset.num_users} users, {dataset.num_items} items, "
          f"{dataset.num_concepts} concepts")

    split = split_leave_one_out(dataset.sequences)
    model = ISRec.from_dataset(
        dataset, max_len=8,
        config=ISRecConfig(dim=16, intent_dim=4, num_intents=2),
    )
    model.fit(dataset, split, TrainConfig(epochs=30, eval_every=5, patience=3))

    evaluator = RankingEvaluator(split, dataset.num_items, num_negatives=5,
                                 seed=0)
    report = evaluator.evaluate(model, stage="test")
    print(f"Test HR@1 {report.hr1:.3f}  MRR {report.mrr:.3f} "
          f"(6 candidates; random MRR ~0.41)")

    print("\nA drifting user's intent trace:")
    print(IntentTracer(model, dataset, num_candidates=3).trace(user=0).render())


if __name__ == "__main__":
    main()
